(* Table 2 regeneration: empirical validation of the three fault bounds
   (input consensus, decoding, output delivery) in both network models,
   by driving each subsystem exactly at and just beyond its bound. *)

module F = Csm_field.Fp.Default
module E = Csm_core.Engine.Make (F)
module P = Csm_core.Protocol.Make (F)
module Params = Csm_core.Params
module M = E.M

type check = {
  label : string;
  bound : string;  (* the paper's inequality *)
  at_bound_ok : bool;  (* holds exactly at the bound *)
  beyond_fails : bool;  (* breaks one step past it *)
}

let rng = Csm_rng.create 0x7AB2

let random_states machine k =
  Array.init k (fun _ ->
      Array.init machine.M.state_dim (fun _ -> F.random rng))

let random_commands machine k =
  Array.init k (fun _ ->
      Array.init machine.M.input_dim (fun _ -> F.random rng))

(* Decoding bound, synchronous: 2b + 1 <= N - d(K-1).  At b = max_faults
   the engine decodes under b corruptions; at b+1 adversarial corruptions
   unique decoding fails. *)
let decoding_sync ~n ~k ~d =
  let machine = M.degree_machine d in
  let b = Params.max_faults ~network:Params.Sync ~n ~k ~d in
  if b < 0 then None
  else begin
    let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
    let init = random_states machine k in
    let commands = random_commands machine k in
    let run faults =
      let e = E.create ~machine ~params ~init in
      let report =
        E.round e ~commands
          ~byzantine:(fun i -> i < faults)
          ~corruption:(fun ~node:_ g -> Array.map (fun _ -> F.random rng) g)
          ()
      in
      report.E.decoded <> None
    in
    Some
      {
        label = Printf.sprintf "decode sync (N=%d K=%d d=%d b=%d)" n k d b;
        bound = "2b+1 <= N - d(K-1)";
        at_bound_ok = run b;
        beyond_fails = not (run (b + 1));
      }
  end

(* Decoding bound, partially synchronous: 3b + 1 <= N - d(K-1): b nodes
   withhold AND (separately counted runs) b lie among the remaining. *)
let decoding_partial ~n ~k ~d =
  let machine = M.degree_machine d in
  let b = Params.max_faults ~network:Params.Partial_sync ~n ~k ~d in
  if b < 0 then None
  else begin
    let params = Params.make ~network:Params.Partial_sync ~n ~k ~d ~b in
    let init = random_states machine k in
    let commands = random_commands machine k in
    (* worst case at fault level x: x withhold... no — x faulty nodes, the
       decoder must proceed after N - x receipts, all x received-or-not
       slots adversarial.  We model: x liars and honest nodes decode from
       N - x results including the x lies is wrong; faithful model: the
       adversary withholds via x nodes, so honest decode from N - x
       results of which... the same x nodes can't both withhold and lie.
       The binding worst case from the paper: decode length N - x with x
       errors (a node cannot distinguish which).  We emulate it directly:
       withhold x results from *honest* senders (slow network) and let
       the x faulty nodes lie. *)
    let run faults =
      let e = E.create ~machine ~params ~init in
      let report =
        E.round e ~commands
          ~byzantine:(fun i -> i < faults)
          ~corruption:(fun ~node:_ g -> Array.map (fun _ -> F.random rng) g)
          ~withheld:(fun i -> i >= faults && i < 2 * faults)
          ()
      in
      report.E.decoded <> None
    in
    Some
      {
        label = Printf.sprintf "decode partial (N=%d K=%d d=%d b=%d)" n k d b;
        bound = "3b+1 <= N - d(K-1)";
        at_bound_ok = run b;
        beyond_fails = not (run (b + 1));
      }
  end

(* Output delivery: 2b + 1 <= N.  With b liars the vote succeeds and is
   correct; with b' such that 2b'+1 > N colluding liars the client can be
   fooled or starved. *)
let output_delivery ~n =
  let b = (n - 1) / 2 in
  let truth = [| F.of_int 7 |] in
  let lie = [| F.of_int 8 |] in
  let responses faults =
    List.init n (fun i -> if i < faults then lie else truth)
  in
  let ok faults =
    match P.vote ~threshold:(faults + 1) (responses faults) with
    | Some v -> F.equal v.(0) truth.(0)
    | None -> false
  in
  {
    label = Printf.sprintf "output delivery (N=%d b=%d)" n b;
    bound = "2b+1 <= N";
    at_bound_ok = ok b;
    beyond_fails = not (ok (b + 1));
  }

(* Input consensus, synchronous (Dolev–Strong): b+1 <= N — up to N-1
   faulty nodes cannot break consistency (they can only force ⊥).  The
   empirical check: with N-1 silent faults the single honest node still
   terminates with a consistent decision. *)
let consensus_sync ~n =
  let module DS = Csm_consensus.Dolev_strong in
  let module Net = Csm_sim.Net in
  let keyring = Csm_crypto.Auth.create_keyring (Csm_rng.create 1) ~n in
  let run faults =
    let cfg =
      { DS.n; f = faults; leader = 0; delta = 10; instance = "t2"; keyring }
    in
    let { DS.decisions; _ } =
      DS.run cfg ~proposal:"v"
        ~byzantine:(fun i -> if i >= n - faults then Some Net.silent else None)
        ()
    in
    (* honest nodes: 0 .. n-faults-1 must agree *)
    let honest = Array.to_list (Array.sub decisions 0 (n - faults)) in
    match honest with
    | [] -> false
    | first :: rest -> List.for_all (DS.decision_eq first) rest
  in
  {
    label = Printf.sprintf "consensus sync (N=%d)" n;
    bound = "b+1 <= N";
    at_bound_ok = run (n - 1);
    beyond_fails = true;  (* b = N leaves no honest node: vacuous *)
  }

(* Input consensus, partially synchronous (PBFT): 3b+1 <= N. *)
let consensus_partial ~n =
  let module Pbft = Csm_consensus.Pbft in
  let module Net = Csm_sim.Net in
  let keyring = Csm_crypto.Auth.create_keyring (Csm_rng.create 2) ~n in
  let run faults =
    let cfg =
      { Pbft.n; f = faults; base_timeout = 2000; instance = "t2p"; keyring }
    in
    let { Pbft.decisions; _ } =
      Pbft.run cfg
        ~proposals:(fun _ -> Some "v")
        ~byzantine:(fun i -> if i < faults then Some Net.silent else None)
        ()
    in
    let honest =
      List.filter_map
        (fun i -> if i < faults then None else decisions.(i))
        (List.init n (fun i -> i))
    in
    List.length honest = n - faults
    && List.for_all (fun d -> String.equal d "v") honest
  in
  let b = (n - 1) / 3 in
  {
    label = Printf.sprintf "consensus partial (N=%d b=%d)" n b;
    bound = "3b+1 <= N";
    at_bound_ok = run b;
    beyond_fails = not (run (b + 1));
  }

(* The standard Table-2 case list, shared with the adversary-synthesis
   certifier (lib/adversary) so the scripted boundary checks and the
   searched tightness certificates always exercise the same
   instances. *)
type case =
  | Decode_sync of { n : int; k : int; d : int }
  | Decode_partial of { n : int; k : int; d : int }
  | Output of { n : int }
  | Consensus_sync of { n : int }
  | Consensus_partial of { n : int }

let standard_cases =
  [
    Decode_sync { n = 11; k = 3; d = 2 };
    Decode_sync { n = 16; k = 4; d = 2 };
    Decode_sync { n = 14; k = 5; d = 1 };
    Decode_partial { n = 14; k = 3; d = 1 };
    Decode_partial { n = 20; k = 3; d = 2 };
    Output { n = 9 };
    Output { n = 10 };
    Consensus_sync { n = 5 };
    Consensus_partial { n = 7 };
    Consensus_partial { n = 10 };
  ]

let check_case = function
  | Decode_sync { n; k; d } -> decoding_sync ~n ~k ~d
  | Decode_partial { n; k; d } -> decoding_partial ~n ~k ~d
  | Output { n } -> Some (output_delivery ~n)
  | Consensus_sync { n } -> Some (consensus_sync ~n)
  | Consensus_partial { n } -> Some (consensus_partial ~n)

let run_all () =
  Csm_obs.Span.with_ ~name:"table2.run" (fun () ->
      List.filter_map check_case standard_cases)

let pp_check ppf c =
  Format.fprintf ppf "%-42s %-22s at-bound=%-5b beyond-fails=%b" c.label
    c.bound c.at_bound_ok c.beyond_fails

let pp_table ppf checks =
  Format.fprintf ppf "@[<v>Table 2 boundary validation@,%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_check)
    checks
