(* Straggler-tolerance experiment.

   CSM inherits the latency benefit of coded computing: a node can decode
   a round as soon as m_min = d(K−1) + 2b + 1 of the N results arrive —
   the remaining N − m_min responses are pure slack.  Replication-style
   execution must instead wait for specific responders.

   We run the simulated execution phase under a heavy-tailed latency
   distribution (base Δ plus an exponential-ish tail on a random subset
   of "straggler" links) and compare the honest decode-completion time
   with early decoding ON vs OFF, sweeping the straggler count. *)

module F = Csm_field.Fp.Default
module P = Csm_core.Protocol.Make (F)
module E = P.E
module M = E.M
module Params = Csm_core.Params
module Net = Csm_sim.Net

type point = {
  n : int;
  stragglers : int;  (* slow nodes this run *)
  slack : int;  (* N - m_min: stragglers CSM can ignore *)
  t_wait_all : float;  (* mean honest decode time, early_decode = false *)
  t_early : float;  (* mean honest decode time, early_decode = true *)
  correct : bool;  (* early decoding still produced correct results *)
}

(* Latency: Δ on fast links; straggler *senders* add a long tail. *)
let straggler_latency rng ~delta ~stragglers ~tail n : Net.latency =
  let slow = Array.make n false in
  Array.iter (fun i -> slow.(i) <- true) (Csm_rng.sample rng ~n ~k:stragglers);
  fun ~src ~dst:_ ~now:_ ->
    if slow.(src) then delta + 1 + Csm_rng.int rng tail else delta

let mean l =
  match l with
  | [] -> nan
  | _ -> float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)

let run_point ~seed ~n ~k ~d ~b ~stragglers ~tail =
  Csm_obs.Span.with_ ~name:"stragglers.point"
    ~attrs:
      [ ("n", string_of_int n); ("stragglers", string_of_int stragglers) ]
    (fun () ->
  let machine = M.degree_machine d in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  let rng = Csm_rng.create seed in
  let init =
    Array.init k (fun _ ->
        Array.init machine.M.state_dim (fun _ -> F.random rng))
  in
  let commands =
    Array.init k (fun _ ->
        Array.init machine.M.input_dim (fun _ -> F.random rng))
  in
  let delta = 10 in
  let adv = P.passive_adversary in
  let measure ~early =
    let engine = E.create ~machine ~params ~init in
    let cfg =
      { (P.default_config params) with P.delta = delta + tail + 2; early_decode = early }
      (* with early decode OFF the node must wait the worst-case bound,
         which under stragglers is delta + tail *)
    in
    let rng' = Csm_rng.create (seed + 7) in
    let latency = straggler_latency rng' ~delta ~stragglers ~tail n in
    let times = Array.make n max_int in
    let per_node =
      P.execution_phase ~latency_override:latency ~decode_times:times cfg
        engine ~commands adv
    in
    let honest_times =
      List.filteri (fun i _ -> times.(i) < max_int) (Array.to_list times)
    in
    (if Csm_obs.Metric.enabled () then
       let h = Csm_obs.Telemetry.straggler_wait ~early in
       List.iter
         (fun t -> Csm_obs.Metric.observe h (float_of_int t))
         honest_times);
    let all_decoded = Array.for_all (fun d -> d <> None) per_node in
    (* verify correctness against the uncoded reference *)
    let next_ref, out_ref = M.run_fleet machine ~states:init ~commands in
    let correct =
      all_decoded
      && Array.for_all
           (function
             | Some (dec : E.decoded) ->
               let veq a b = Array.for_all2 F.equal a b in
               Array.for_all2 veq dec.E.next_states next_ref
               && Array.for_all2 veq dec.E.outputs out_ref
             | None -> false)
           per_node
    in
    (mean honest_times, correct)
  in
  let t_wait_all, ok1 = measure ~early:false in
  let t_early, ok2 = measure ~early:true in
  let engine = E.create ~machine ~params ~init in
  {
    n;
    stragglers;
    slack = n - E.min_results engine;
    t_wait_all;
    t_early;
    correct = ok1 && ok2;
  })

(* Sweep straggler counts through the slack and beyond it: within the
   slack early decoding completes at the fast-link latency; beyond it
   the decoder must wait for stragglers and the latency cliff appears
   (results stay correct throughout — only timing degrades). *)
let sweep ?(seed = 0x57A6) ?(n = 16) ?(k = 3) ?(d = 2) ?(b = 2) ?(tail = 200)
    () =
  let machine_slack = n - (Params.composite_degree ~k ~d + (2 * b) + 1) in
  let top = min (n - 1) (machine_slack + 3) in
  List.map
    (fun s -> run_point ~seed:(seed + s) ~n ~k ~d ~b ~stragglers:s ~tail)
    (List.init (top + 1) (fun i -> i))

let pp_point ppf p =
  Format.fprintf ppf
    "N=%-4d stragglers=%-3d (slack=%d)  wait-all=%-8.1f early=%-8.1f speedup=%.1fx correct=%b"
    p.n p.stragglers p.slack p.t_wait_all p.t_early
    (p.t_wait_all /. p.t_early)
    p.correct
