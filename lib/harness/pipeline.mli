(** Consensus/execution pipelining experiment (paper §6): with coded
    execution an epoch's consensus runs concurrently with the previous
    epoch's execution, so the makespan of R rounds drops from
    R·(Tc + Te) to Tc + R·max(Tc, Te). *)

type result = {
  rounds : int;
  consensus_time : int;  (** per-round consensus cost, simulated ticks *)
  execution_time : int;  (** per-round execution cost, simulated ticks *)
  sequential_makespan : int;
  pipelined_makespan : int;
  speedup : float;
}

val run : ?rounds:int -> ?n:int -> ?k:int -> ?d:int -> ?b:int -> unit -> result
(** Measure both schedules on a synchronous simulated cluster.
    Deterministic: all randomness comes from a fixed [Csm_rng] seed. *)

val pp : Format.formatter -> result -> unit
