(* Theorem-1 scaling experiments:

   1. K_max, storage efficiency and security vs. N (linear scaling of γ
      and β at fixed μ, d);
   2. per-node execution-phase cost vs. N for CSM decentralized vs.
      CSM + INTERMIX vs. full replication — the throughput-scaling claim
      λ_CSM = Θ(N / log²N loglog N): per-node cost must grow
      polylogarithmically for delegated CSM while decentralized CSM's
      decoding grows polynomially;
   3. fast (subproduct-tree) vs. naive coding cost, the §6.2 ablation. *)

module CF = Csm_field.Counted.Make (Csm_field.Fp.Default)
module Counter = Csm_metrics.Counter
module Params = Csm_core.Params
module Pool = Csm_parallel.Pool

type scaling_point = {
  n : int;
  k : int;
  b : int;
  gamma : int;
  lambda_full : float;
  lambda_partial : float;
  lambda_csm : float;
  lambda_csm_intermix : float;
}

(* One Table-1 measurement per N.  Each configuration is a self-contained
   simulation (own engines, ledgers, rngs), so the sweep points run
   across the domain pool. *)
let throughput_sweep ?(mu = 0.25) ?(d = 2) ?(rounds = 2) ns =
  Csm_obs.Event.emit
    ~attrs:[ ("points", string_of_int (List.length ns)) ]
    Csm_obs.Event.Info "scaling.throughput_sweep.start";
  Pool.parallel_list_map
    (fun n ->
      Csm_obs.Span.with_ ~name:"scaling.point"
        ~attrs:[ ("n", string_of_int n) ]
        (fun () ->
      let setup, rows = Table1.run ~rounds ~n ~mu ~d () in
      let find name =
        (List.find (fun r -> r.Table1.scheme = name) rows).Table1.throughput
      in
      let point =
        {
          n;
          k = setup.Table1.k;
          b = setup.Table1.b;
          gamma = setup.Table1.k;
          lambda_full = find "full-replication";
          lambda_partial = find "partial-replication";
          lambda_csm = find "csm-decentralized";
          lambda_csm_intermix = find "csm-intermix";
        }
      in
      Csm_obs.Event.emit
        ~attrs:
          [
            ("n", string_of_int n);
            ("lambda_csm", Printf.sprintf "%.9f" point.lambda_csm);
          ]
        Csm_obs.Event.Info "scaling.point.done";
      point))
    ns

(* Storage/security scaling: closed forms from Params, checked linear. *)
type growth_point = { gn : int; gk_max : int; gbeta : int }

let growth_sweep ?(mu = 0.25) ?(d = 2) ns =
  List.map
    (fun n ->
      let b = int_of_float (mu *. float_of_int n) in
      {
        gn = n;
        gk_max = Params.max_machines ~network:Params.Sync ~n ~b ~d;
        gbeta = b;
      })
    ns

(* Fast vs. naive polynomial coding: operation counts for encoding K
   values at N points. *)
module Sub = Csm_poly.Subproduct.Make (CF)
module Lag = Csm_poly.Lagrange.Make (CF)

type coding_cost = { cn : int; naive_ops : int; fast_ops : int }

let coding_sweep ?(ratio = 2) ns =
  Csm_obs.Event.emit
    ~attrs:[ ("points", string_of_int (List.length ns)) ]
    Csm_obs.Event.Info "scaling.coding_sweep.start";
  Pool.parallel_list_map
    (fun n ->
      Csm_obs.Span.with_ ~name:"scaling.coding_point"
        ~attrs:[ ("n", string_of_int n) ]
        (fun () ->
      (* per-point rng so each sweep point is self-contained (and the
         sweep is deterministic whatever the domain count) *)
      let rng = Csm_rng.create (0x5CA1 + n) in
      let k = max 1 (n / ratio) in
      let omegas = Array.init k (fun i -> CF.of_int i) in
      let alphas = Array.init n (fun i -> CF.of_int (k + i)) in
      let values = Array.init k (fun _ -> CF.random rng) in
      (* Both paths may precompute everything round-independent
         (Remark 4): the naive path its coefficient matrix C, the fast
         path its subproduct trees.  Only per-round work is counted. *)
      let c = Lag.coeff_matrix ~omegas ~alphas in
      let om = Sub.prepare omegas and al = Sub.prepare alphas in
      let naive = Counter.create () in
      CF.with_counter naive (fun () -> ignore (Lag.encode_with_matrix c values));
      let fast = Counter.create () in
      CF.with_counter fast (fun () ->
          let poly = Sub.interpolate_prepared om values in
          ignore (Sub.eval_prepared al poly));
      { cn = n; naive_ops = Counter.total naive; fast_ops = Counter.total fast }))
    ns

let pp_scaling ppf p =
  Format.fprintf ppf
    "N=%-5d K=%-4d b=%-4d γ=%-4d λ_full=%-10.6f λ_part=%-10.6f λ_csm=%-10.6f λ_csm_ix=%-10.6f"
    p.n p.k p.b p.gamma p.lambda_full p.lambda_partial p.lambda_csm
    p.lambda_csm_intermix

let pp_growth ppf g =
  Format.fprintf ppf "N=%-5d K_max=%-5d β=%-5d" g.gn g.gk_max g.gbeta

let pp_coding ppf c =
  Format.fprintf ppf "N=%-6d naive=%-10d fast=%-10d ratio=%.2f" c.cn
    c.naive_ops c.fast_ops
    (float_of_int c.naive_ops /. float_of_int (max 1 c.fast_ops))
