(** Throughput/storage/coding-cost scaling sweeps (paper §7, Fig. 3):
    how λ, K_max, β and the coding work grow with N under each
    scheme. *)

type scaling_point = {
  n : int;
  k : int;  (** machines actually run (divisor-rounded K_max) *)
  b : int;  (** faults at the operating point *)
  gamma : int;  (** per-node storage in state-sizes *)
  lambda_full : float;
  lambda_partial : float;
  lambda_csm : float;
  lambda_csm_intermix : float;
}

val throughput_sweep :
  ?mu:float -> ?d:int -> ?rounds:int -> int list -> scaling_point list
(** One measured Table-1-style configuration per N; points evaluate in
    parallel across the domain pool. *)

type growth_point = { gn : int; gk_max : int; gbeta : int }

val growth_sweep : ?mu:float -> ?d:int -> int list -> growth_point list
(** Closed-form K_max and β growth from [Params]; checked linear in N. *)

type coding_cost = { cn : int; naive_ops : int; fast_ops : int }

val coding_sweep : ?ratio:int -> int list -> coding_cost list
(** Counted field ops of naive (O(N²)) vs transform-based encoding. *)

val pp_scaling : Format.formatter -> scaling_point -> unit
val pp_growth : Format.formatter -> growth_point -> unit
val pp_coding : Format.formatter -> coding_cost -> unit
