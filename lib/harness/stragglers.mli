(** Straggler tolerance experiment (paper §5.3): early decoding needs
    only m_min = deg·(K−1) + 2b + 1 of the N results, so up to
    N − m_min slow nodes cost nothing; one straggler past that slack
    and decode latency cliffs to the tail of the latency
    distribution. *)

type point = {
  n : int;
  stragglers : int;  (** slow nodes in this run *)
  slack : int;  (** N − m_min: stragglers CSM can ignore *)
  t_wait_all : float;  (** mean honest decode time, early_decode = false *)
  t_early : float;  (** mean honest decode time, early_decode = true *)
  correct : bool;  (** early decoding still produced correct results *)
}

val run_point :
  seed:int ->
  n:int ->
  k:int ->
  d:int ->
  b:int ->
  stragglers:int ->
  tail:int ->
  point
(** One simulated run at a fixed straggler count; [tail] is the slow
    nodes' extra latency in ticks. *)

val sweep :
  ?seed:int ->
  ?n:int ->
  ?k:int ->
  ?d:int ->
  ?b:int ->
  ?tail:int ->
  unit ->
  point list
(** Straggler counts 0 .. slack+3 (capped at N−1), one run each. *)

val pp_point : Format.formatter -> point -> unit
