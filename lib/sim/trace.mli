(** Trace collection and protocol-agnostic invariant checking for
    simulation runs (causality, monotonicity, halted silence, timer
    integrity). *)

type 'm t

val create : unit -> 'm t

val tracer : 'm t -> 'm Net.trace_event -> unit
(** Pass as [Net.run ~tracer:(Trace.tracer t)]. *)

val events : 'm t -> 'm Net.trace_event list
(** In chronological order. *)

type violation = string

val check : ?msg_equal:('m -> 'm -> bool) -> 'm t -> violation list
(** Empty list = all physical invariants hold.  Also flags a timer
    re-armed at the same (node, tag, fire time) without an intervening
    fire.  Violations come back in chronological order of the offending
    event. *)

val message_count : 'm t -> int
