(* Discrete-event message-passing network simulator.

   Nodes are behavior records (closures over their own mutable state);
   the simulator owns time, the event queue and delivery.  Guarantees
   provided to protocols:

   - authenticated channels: the [sender] argument of [on_message] is
     stamped by the simulator and cannot be forged (the paper's
     authenticated-faults model at the channel level; transferable
     signatures for relaying live in [Csm_crypto]);
   - deterministic execution: same behaviors + same latency model =>
     identical runs;
   - Byzantine power: a Byzantine behavior may send arbitrary messages
     to arbitrary subsets (equivocation), stay silent, or delay its own
     sends — everything except forging another node's channel.

   Latency models:
   - [sync delta]: every message takes exactly [delta] (the known bound);
   - [partial_sync ~gst ~delta ~pre]: before the global stabilization
     time messages take an adversary-chosen delay [pre] (unbounded);
     any message is delivered no later than max(send, gst) + delta,
     the standard partial-synchrony guarantee. *)

type latency = src:int -> dst:int -> now:int -> int

let sync ~delta : latency =
 fun ~src:_ ~dst:_ ~now:_ -> delta

let partial_sync ~gst ~delta ~(pre : latency) : latency =
 fun ~src ~dst ~now ->
  let chosen = pre ~src ~dst ~now in
  let delivery = now + max 1 chosen in
  let bound = max now gst + delta in
  max 1 (min delivery bound - now)

type 'm api = {
  me : int;
  n : int;
  now : unit -> int;
  send : int -> 'm -> unit;
  broadcast : 'm -> unit;  (* to every other node *)
  set_timer : delay:int -> tag:int -> unit;
  halt : unit -> unit;
}

type 'm behavior = {
  init : 'm api -> unit;
  on_message : 'm api -> sender:int -> 'm -> unit;
  on_timer : 'm api -> int -> unit;
}

(* A node that does nothing: the simplest Byzantine strategy (crash /
   withholding) and a building block for others. *)
let silent : 'm behavior =
  {
    init = (fun _ -> ());
    on_message = (fun _ ~sender:_ _ -> ());
    on_timer = (fun _ _ -> ());
  }

(* Selective silence: run [inner] unchanged but deliver its sends only
   to destinations passing [keep].  The wrapped api re-implements
   [broadcast] as per-destination sends so the filter sees every
   destination; the simulator still stamps the true sender, so this
   cannot forge — it can only withhold. *)
let filter_sends keep (inner : 'm behavior) : 'm behavior =
  let wrap api =
    let send dst m =
      if keep ~dst ~now:(api.now ()) then api.send dst m
    in
    {
      api with
      send;
      broadcast =
        (fun m ->
          for dst = 0 to api.n - 1 do
            if dst <> api.me then send dst m
          done);
    }
  in
  {
    init = (fun api -> inner.init (wrap api));
    on_message = (fun api ~sender m -> inner.on_message (wrap api) ~sender m);
    on_timer = (fun api tag -> inner.on_timer (wrap api) tag);
  }

(* Per-node arrays are indexed by node id; byte totals use the [?size]
   sizer passed to [run] (0 when omitted, so the arrays stay cheap). *)
type stats = {
  mutable messages_sent : int;
  mutable messages_delivered : int;
  mutable timers_fired : int;
  mutable end_time : int;
  sent_by : int array;
  received_by : int array;
  bytes_sent_by : int array;
  bytes_received_by : int array;
}

type 'm event =
  | Deliver of { dst : int; src : int; msg : 'm }
  | Timer of { node : int; tag : int }

(* Trace events, for debugging and for the invariant checker in
   [Trace]. *)
type 'm trace_event =
  | T_send of { at : int; src : int; dst : int; deliver_at : int; msg : 'm }
  | T_deliver of { at : int; src : int; dst : int; msg : 'm }
  | T_drop_halted of { at : int; dst : int }
  | T_timer_set of { at : int; node : int; tag : int; fire_at : int }
  | T_timer_fired of { at : int; node : int; tag : int }
  | T_halt of { at : int; node : int }

exception Simulation_limit of string

let run ?(max_time = 1_000_000) ?(max_events = 10_000_000)
    ?(tracer : ('m trace_event -> unit) option) ?(size : ('m -> int) option)
    ~latency (behaviors : 'm behavior array) : stats =
  let n = Array.length behaviors in
  if n = 0 then invalid_arg "Net.run: no nodes";
  let queue = Event_queue.create ~dummy:(Timer { node = -1; tag = -1 }) in
  let halted = Array.make n false in
  let stats =
    {
      messages_sent = 0;
      messages_delivered = 0;
      timers_fired = 0;
      end_time = 0;
      sent_by = Array.make n 0;
      received_by = Array.make n 0;
      bytes_sent_by = Array.make n 0;
      bytes_received_by = Array.make n 0;
    }
  in
  let size_of = match size with Some f -> f | None -> fun _ -> 0 in
  let clock = ref 0 in
  let trace ev = match tracer with Some f -> f ev | None -> () in
  let api_of i =
    let send dst msg =
      if dst < 0 || dst >= n then invalid_arg "Net.send: bad destination";
      stats.messages_sent <- stats.messages_sent + 1;
      stats.sent_by.(i) <- stats.sent_by.(i) + 1;
      stats.bytes_sent_by.(i) <- stats.bytes_sent_by.(i) + size_of msg;
      let delay = max 1 (latency ~src:i ~dst ~now:!clock) in
      trace
        (T_send { at = !clock; src = i; dst; deliver_at = !clock + delay; msg });
      Event_queue.push queue ~time:(!clock + delay)
        (Deliver { dst; src = i; msg })
    in
    {
      me = i;
      n;
      now = (fun () -> !clock);
      send;
      broadcast =
        (fun msg ->
          for dst = 0 to n - 1 do
            if dst <> i then send dst msg
          done);
      set_timer =
        (fun ~delay ~tag ->
          let fire_at = !clock + max 1 delay in
          trace (T_timer_set { at = !clock; node = i; tag; fire_at });
          Event_queue.push queue ~time:fire_at (Timer { node = i; tag }));
      halt =
        (fun () ->
          trace (T_halt { at = !clock; node = i });
          halted.(i) <- true);
    }
  in
  let apis = Array.init n api_of in
  Array.iteri (fun i b -> if not halted.(i) then b.init apis.(i)) behaviors;
  let events = ref 0 in
  let rec loop () =
    match Event_queue.pop queue with
    | None -> ()
    | Some (time, ev) ->
      if time > max_time then ()
      else begin
        incr events;
        if !events > max_events then
          raise (Simulation_limit "event budget exhausted");
        clock := time;
        stats.end_time <- time;
        (match ev with
        | Deliver { dst; src; msg } ->
          if not halted.(dst) then begin
            stats.messages_delivered <- stats.messages_delivered + 1;
            stats.received_by.(dst) <- stats.received_by.(dst) + 1;
            stats.bytes_received_by.(dst) <-
              stats.bytes_received_by.(dst) + size_of msg;
            trace (T_deliver { at = time; src; dst; msg });
            behaviors.(dst).on_message apis.(dst) ~sender:src msg
          end
          else trace (T_drop_halted { at = time; dst })
        | Timer { node; tag } ->
          if not halted.(node) then begin
            stats.timers_fired <- stats.timers_fired + 1;
            trace (T_timer_fired { at = time; node; tag });
            behaviors.(node).on_timer apis.(node) tag
          end);
        loop ()
      end
  in
  loop ();
  stats
