(* Trace collection and invariant checking for simulation runs.

   A collector accumulates [Net.trace_event]s; [check] validates the
   physical invariants every run must satisfy regardless of protocol:

   - causality: every delivery corresponds to an earlier send with the
     same (src, dst) and the send's predicted delivery time;
   - monotonicity: event timestamps never decrease;
   - halted silence: no delivery is processed by a node after its halt
     (drops are recorded instead);
   - timer integrity: every fired timer was set, fires at its set time,
     and no timer is set twice at the same (node, tag, fire time)
     without an intervening fire.

   Violations are returned in chronological order of the offending
   event (ties broken by detection order), so a failing test reads as a
   timeline.  The checker is protocol-agnostic, so any test can wrap
   its run with [collector] and assert [check] for free. *)

type 'm t = { mutable events : 'm Net.trace_event list (* newest first *) }

let create () = { events = [] }

let tracer t ev = t.events <- ev :: t.events

let events t = List.rev t.events

type violation = string

let time_of (ev : 'm Net.trace_event) =
  match ev with
  | Net.T_send { at; _ }
  | Net.T_deliver { at; _ }
  | Net.T_drop_halted { at; _ }
  | Net.T_timer_set { at; _ }
  | Net.T_timer_fired { at; _ }
  | Net.T_halt { at; _ } ->
    at

let check ?(msg_equal = ( = )) (t : 'm t) : violation list =
  let evs = events t in
  (* each violation is stamped with the offending event's time plus a
     detection sequence number, so the final list can be merged across
     the independent passes into chronological order *)
  let violations = ref [] in
  let seq = ref 0 in
  let bad ~at fmt =
    Printf.ksprintf
      (fun s ->
        incr seq;
        violations := (at, !seq, s) :: !violations)
      fmt
  in
  (* monotone timestamps *)
  let rec mono last = function
    | [] -> ()
    | ev :: rest ->
      let now = time_of ev in
      if now < last then bad ~at:now "timestamp regression at t=%d" now;
      mono now rest
  in
  mono 0 evs;
  (* causality of deliveries: match each deliver against pending sends *)
  let pending : (int * int * int * 'm) list ref = ref [] in
  (* (src, dst, deliver_at, msg) *)
  let halts = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match ev with
      | Net.T_send { src; dst; deliver_at; msg; at } ->
        if deliver_at <= at then bad ~at "zero/negative latency at t=%d" at;
        pending := (src, dst, deliver_at, msg) :: !pending
      | Net.T_deliver { at; src; dst; msg } ->
        (match Hashtbl.find_opt halts dst with
        | Some h when at > h ->
          bad ~at "delivery to halted node %d at t=%d" dst at
        | _ -> ());
        let rec take acc = function
          | [] ->
            bad ~at "delivery without matching send (src=%d dst=%d t=%d)" src
              dst at;
            List.rev acc
          | (s, d, da, m) :: rest
            when s = src && d = dst && da = at && msg_equal m msg ->
            List.rev_append acc rest
          | x :: rest -> take (x :: acc) rest
        in
        pending := take [] !pending
      | Net.T_drop_halted _ -> ()
      | Net.T_timer_set _ -> ()
      | Net.T_timer_fired _ -> ()
      | Net.T_halt { node; at } ->
        if not (Hashtbl.mem halts node) then Hashtbl.add halts node at)
    evs;
  (* timers: every fired (node, tag, at) has a matching set, and no
     (node, tag, fire_at) is re-armed while still pending — a double set
     without an intervening fire is a scheduling bug even though the
     duplicate would fire "on time" *)
  let sets : (int * int * int, int) Hashtbl.t = Hashtbl.create 32 in
  let count key = Option.value ~default:0 (Hashtbl.find_opt sets key) in
  List.iter
    (function
      | Net.T_timer_set { node; tag; fire_at; at } ->
        let key = (node, tag, fire_at) in
        let c = count key in
        if c > 0 then
          bad ~at
            "timer set twice without intervening fire (node=%d tag=%d \
             fire_at=%d set at t=%d)"
            node tag fire_at at;
        Hashtbl.replace sets key (c + 1)
      | Net.T_timer_fired { node; tag; at } ->
        let key = (node, tag, at) in
        let c = count key in
        if c = 0 then
          bad ~at "timer fired without set (node=%d tag=%d t=%d)" node tag at
        else Hashtbl.replace sets key (c - 1)
      | Net.T_send _ | Net.T_deliver _ | Net.T_drop_halted _ | Net.T_halt _ ->
        ())
    evs;
  List.sort
    (fun (t1, s1, _) (t2, s2, _) ->
      match Int.compare t1 t2 with 0 -> Int.compare s1 s2 | c -> c)
    !violations
  |> List.map (fun (_, _, s) -> s)

let message_count t =
  List.length
    (List.filter (function Net.T_send _ -> true | _ -> false) (events t))
