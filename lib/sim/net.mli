(** Discrete-event message-passing network simulator with synchronous and
    partially synchronous latency models and full-power (but
    non-forging) Byzantine node slots. *)

type latency = src:int -> dst:int -> now:int -> int
(** Delay (≥ 1 enforced) applied to a message sent now. *)

val sync : delta:int -> latency
(** Fixed known bound Δ: the synchronous model. *)

val partial_sync : gst:int -> delta:int -> pre:latency -> latency
(** Adversary-chosen delays via [pre] before the global stabilization
    time; every message is delivered by max(send, gst) + delta. *)

type 'm api = {
  me : int;
  n : int;
  now : unit -> int;
  send : int -> 'm -> unit;
  broadcast : 'm -> unit;  (** to every node except self *)
  set_timer : delay:int -> tag:int -> unit;
  halt : unit -> unit;  (** stop receiving events *)
}

type 'm behavior = {
  init : 'm api -> unit;
  on_message : 'm api -> sender:int -> 'm -> unit;
  on_timer : 'm api -> int -> unit;
}

val silent : 'm behavior
(** Crash-style Byzantine strategy: never sends anything. *)

val filter_sends :
  (dst:int -> now:int -> bool) -> 'm behavior -> 'm behavior
(** Selective silence toward a target set: run the inner behavior
    unchanged but deliver its sends (and broadcasts, re-expanded per
    destination) only to destinations passing the predicate.  Withholds
    only — the simulator still stamps the true sender. *)

type stats = {
  mutable messages_sent : int;
  mutable messages_delivered : int;
  mutable timers_fired : int;
  mutable end_time : int;
  sent_by : int array;  (** messages sent, per node id *)
  received_by : int array;  (** messages delivered, per node id *)
  bytes_sent_by : int array;  (** via the [?size] sizer; 0s without one *)
  bytes_received_by : int array;
}

type 'm trace_event =
  | T_send of { at : int; src : int; dst : int; deliver_at : int; msg : 'm }
  | T_deliver of { at : int; src : int; dst : int; msg : 'm }
  | T_drop_halted of { at : int; dst : int }
  | T_timer_set of { at : int; node : int; tag : int; fire_at : int }
  | T_timer_fired of { at : int; node : int; tag : int }
  | T_halt of { at : int; node : int }

exception Simulation_limit of string

val run :
  ?max_time:int ->
  ?max_events:int ->
  ?tracer:('m trace_event -> unit) ->
  ?size:('m -> int) ->
  latency:latency ->
  'm behavior array ->
  stats
(** Execute until the event queue drains (or a limit hits).  The
    [sender] passed to [on_message] is stamped by the simulator and
    cannot be forged.  [size] reports a message's wire size in bytes
    for the per-node byte totals (defaults to [fun _ -> 0]); sizers
    should return the full on-wire size — [Csm_wire.Frame.encoded_size]
    over the frame payload the real transport would send — so simulated
    byte counts equal socket bytes.
    @raise Simulation_limit when [max_events] is exceeded. *)
