(** Structured, leveled protocol-event log over a fixed ring buffer.

    Gated by [CSM_EVENTS] (via [install]) or [set_level]; with logging
    disabled [emit] is one atomic load and allocates nothing.  The ring
    keeps the newest [capacity] events. *)

type level = Debug | Info | Warn | Error

type t = {
  seq : int;  (** process-unique, monotone emission index — wall clock
      [ts] and [mono] are sampled in emission order but may tie *)
  ts : float;  (** wall clock at emission ([Unix.gettimeofday],
      seconds since the epoch): the human-readable absolute time, but
      subject to NTP steps and VM-migration jumps, so deltas between
      two events' [ts] can be negative or wildly wrong *)
  mono : float;  (** never-decreasing clock at emission ({!Clock.mono},
      seconds): use [b.mono -. a.mono] for durations and event-log
      deltas — clamped so it cannot go backwards even when the wall
      clock does *)
  level : level;
  name : string;
  attrs : (string * string) list;
}

val capacity : int

val set_level : level option -> unit
(** [None] disables logging entirely. *)

val current_level : unit -> level option
val enabled : level -> bool

val level_name : level -> string
val level_of_string : string -> level option

val emit : ?attrs:(string * string) list -> level -> string -> unit
(** Record an event when [level] clears the threshold; a no-op (one
    atomic load) otherwise. *)

val recent : unit -> t list
(** Surviving events, oldest first. *)

val since : int -> t list
(** Surviving events with [seq] strictly past the argument, oldest
    first — the streaming-telemetry event tail. *)

val total : unit -> int
(** Events emitted since the last [reset], including overwritten ones. *)

val dropped : unit -> int
(** Events the ring overwrote before they were read (the
    [csm_events_dropped_total] signal): the tail shipped in telemetry
    bundles is truncated by this many entries. *)

val reset : unit -> unit

val install : unit -> unit
(** Read [CSM_EVENTS] once (debug|info|warn|error) and set the level
    accordingly.  Idempotent; free when unset. *)

val pp : Format.formatter -> t -> unit
