(** Domain-safe metrics registry: atomic counters, gauges, and
    fixed-bucket log-scale histograms with lock-free per-domain shards
    and an associative merge.

    Recording is globally gated (like [Span]): with metrics disabled
    every record call is one atomic load and allocates nothing.
    Identity is (name, sorted labels); re-registering returns the
    existing instrument, so hot paths may look handles up on demand. *)

type labels = (string * string) list

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

(** {1 Instruments} *)

type counter
type gauge
type hist

val counter : ?help:string -> ?labels:labels -> string -> counter
(** Monotone event count ([_total] naming convention). *)

val gauge : ?help:string -> ?labels:labels -> string -> gauge
(** Point-in-time float value. *)

val histogram :
  ?help:string -> ?labels:labels -> ?buckets:float array -> string -> hist
(** Distribution over fixed buckets; [buckets] are strictly increasing
    upper bounds (default: [default_buckets]).  All instruments of one
    family must share bucket layout for exposition to make sense.
    @raise Invalid_argument on an empty/unsorted layout or a name
    re-registered as a different kind. *)

val inc : ?by:int -> counter -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
val add : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : hist -> float -> unit
(** Lock-free after a domain's first observation on the instrument. *)

val time : hist -> (unit -> 'a) -> 'a
(** Run the closure and observe its wall-clock duration in seconds;
    exactly [f ()] (no clock reads) when metrics are disabled. *)

(** {1 Bucket layouts} *)

val log_buckets : ?lo:float -> ?factor:float -> ?count:int -> unit -> float array
(** [lo · factorⁱ] for i in [0, count): log-scale upper bounds. *)

val default_buckets : float array
(** 1µs … ~1000s, factor 4 (latency-shaped). *)

(** {1 Snapshots} *)

type snapshot = {
  s_bounds : float array;  (** bucket upper bounds *)
  s_counts : int array;  (** per-bucket counts; overflow (+Inf) last *)
  s_sum : float;
  s_count : int;
}

val snapshot : hist -> snapshot
(** Merge of all per-domain shards; schedule-independent counts. *)

val merge : snapshot -> snapshot -> snapshot
(** Associative and commutative combine of same-layout snapshots.
    @raise Invalid_argument on a bucket-layout mismatch. *)

val quantile : snapshot -> float -> float
(** Nearest-rank quantile estimate — the upper bound of the bucket
    holding rank ⌈q·count⌉ (exact to within one bucket); [0.] when
    empty. *)

(** {1 Registry views (for exposition)} *)

type kind = K_counter | K_gauge | K_histogram

type value =
  | V_counter of int
  | V_gauge of float
  | V_histogram of snapshot

type sample = { labels : labels; value : value }

type view = {
  name : string;
  help : string;
  kind : kind;
  samples : sample list;  (** sorted by labels *)
}

val families : unit -> view list
(** Every registered family, sorted by name, with current values. *)

val reset : unit -> unit
(** Drop the whole registry (tests / per-run isolation).  Handles
    interned before the reset keep working but are no longer
    exported. *)
