(* Hybrid logical clock (Kulkarni et al.): a per-process clock whose
   stamps are close to wall time yet respect causality — a frame's
   receive stamp always exceeds its send stamp even across hosts whose
   wall clocks disagree.

   A stamp packs into one native int:

     bits 16..62   physical component, milliseconds since the epoch
     bits  0..15   logical counter, breaking ties within one millisecond

   so integer comparison IS the happened-before-consistent order, and a
   stamp survives a wire round trip through the frame extension's u64
   untouched.  46 bits of milliseconds overflow in ~year 4180.

   All updates go through one [Atomic.t] CAS loop, so any domain or
   thread may stamp concurrently; a successful CAS yields a stamp
   strictly above every stamp previously issued by this process.

   [mono] is the clock's other face: a never-decreasing wall-clock read
   (the stdlib exposes no monotonic clock and mtime is not vendored),
   clamped so a wall-clock step backwards — NTP, VM migration — cannot
   make event-log deltas negative. *)

type stamp = int

let logical_bits = 16
let logical_mask = (1 lsl logical_bits) - 1
let ms s = s lsr logical_bits
let count s = s land logical_mask

let pack ~ms ~count =
  if ms < 0 || count < 0 || count > logical_mask then
    invalid_arg "Clock.pack"
  else (ms lsl logical_bits) lor count

let compare = Int.compare

(* Componentwise max: the commutative, associative, idempotent join the
   aggregator folds over node stamps.  Equals plain integer max because
   of the packing. *)
let join a b = if a >= b then a else b

let seconds s = float_of_int (ms s) /. 1000.0

let to_wire s = Int64.of_int s

(* Total: a crafted u64 from the wire (negative, or wider than a native
   int) clamps to 0 — an "ancient" stamp that merges as a no-op. *)
let of_wire w =
  if Int64.compare w 0L < 0 || Int64.compare w (Int64.of_int max_int) > 0 then 0
  else Int64.to_int w

let state = Atomic.make 0

let wall_ms () = int_of_float (Unix.gettimeofday () *. 1000.0)

(* Successor of [prev] at physical time [pt]: take the later of the two
   physical components, bump the counter on a tie, carry counter
   overflow into the millisecond. *)
let advance prev pt =
  if pt > ms prev then pack ~ms:pt ~count:0
  else if count prev < logical_mask then prev + 1
  else pack ~ms:(ms prev + 1) ~count:0

let rec now () =
  let cur = Atomic.get state in
  let next = advance cur (wall_ms ()) in
  if Atomic.compare_and_set state cur next then next else now ()

(* Receive rule: fold the remote stamp in, then advance past both — the
   returned stamp strictly exceeds the remote one and everything this
   process issued before, which is what orders a Recv after its Send in
   the merged trace. *)
let rec observe remote =
  let cur = Atomic.get state in
  let next = advance (join cur remote) (wall_ms ()) in
  if Atomic.compare_and_set state cur next then next else observe remote

let peek () = Atomic.get state

(* |HLC physical - wall now|: how far causality has dragged this
   process's clock ahead of (or a step has put it behind) real time.
   Feeds csm_hlc_skew_seconds. *)
let skew_seconds s =
  Float.abs (seconds s -. Unix.gettimeofday ())

let reset () = Atomic.set state 0

let mono_last = Atomic.make 0L

let rec mono () =
  let last = Atomic.get mono_last in
  let now_bits = Int64.bits_of_float (Unix.gettimeofday ()) in
  (* both values are positive floats, whose IEEE-754 bit patterns order
     like the floats themselves *)
  if Int64.compare now_bits last <= 0 then Int64.float_of_bits last
  else if Atomic.compare_and_set mono_last last now_bits then
    Int64.float_of_bits now_bits
  else mono ()

let pp ppf s = Format.fprintf ppf "%d.%03d+%d" (ms s / 1000) (ms s mod 1000) (count s)
