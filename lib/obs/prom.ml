(* Prometheus text-format exposition (version 0.0.4) of the [Metric]
   registry.

   One HELP/TYPE header per family, then one sample line per instrument
   — histograms expand to cumulative [_bucket{le=...}] series plus
   [_sum] and [_count], exactly the layout scrapers and promtool
   expect.  Label values are escaped per the spec (backslash, quote,
   newline); numbers use the shortest round-trip decimal form shared
   with [Json]. *)

let escape_label_value s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* {k1="v1",k2="v2"} — empty string when no labels *)
let label_block (labels : Metric.labels) =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           labels)
    ^ "}"

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Json.float_repr f

let kind_name = function
  | Metric.K_counter -> "counter"
  | Metric.K_gauge -> "gauge"
  | Metric.K_histogram -> "histogram"

(* escape for HELP text: backslash and newline only (spec) *)
let escape_help s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_family buf (v : Metric.view) =
  if v.Metric.help <> "" then
    Printf.bprintf buf "# HELP %s %s\n" v.Metric.name
      (escape_help v.Metric.help);
  Printf.bprintf buf "# TYPE %s %s\n" v.Metric.name (kind_name v.Metric.kind);
  List.iter
    (fun (s : Metric.sample) ->
      match s.Metric.value with
      | Metric.V_counter c ->
        Printf.bprintf buf "%s%s %d\n" v.Metric.name
          (label_block s.Metric.labels)
          c
      | Metric.V_gauge g ->
        Printf.bprintf buf "%s%s %s\n" v.Metric.name
          (label_block s.Metric.labels)
          (float_str g)
      | Metric.V_histogram h ->
        let n = Array.length h.Metric.s_bounds in
        let cumulative = ref 0 in
        for i = 0 to n - 1 do
          cumulative := !cumulative + h.Metric.s_counts.(i);
          Printf.bprintf buf "%s_bucket%s %d\n" v.Metric.name
            (label_block
               (s.Metric.labels @ [ ("le", float_str h.Metric.s_bounds.(i)) ]))
            !cumulative
        done;
        Printf.bprintf buf "%s_bucket%s %d\n" v.Metric.name
          (label_block (s.Metric.labels @ [ ("le", "+Inf") ]))
          h.Metric.s_count;
        Printf.bprintf buf "%s_sum%s %s\n" v.Metric.name
          (label_block s.Metric.labels)
          (float_str h.Metric.s_sum);
        Printf.bprintf buf "%s_count%s %d\n" v.Metric.name
          (label_block s.Metric.labels)
          h.Metric.s_count)
    v.Metric.samples

(* Render an explicit view list — the cluster driver passes the merged
   cross-node views here; [render] below is the local-registry case. *)
let render_views views =
  let buf = Buffer.create 4096 in
  List.iter (render_family buf) views;
  Buffer.contents buf

let render () = render_views (Metric.families ())

let write ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ()))

let output oc = output_string oc (render ())

let metrics_path () = Sys.getenv_opt "CSM_METRICS"

let installed = ref false

(* Environment-driven activation, mirroring [Exporter.install]: when
   CSM_METRICS names a path, enable the registry and write the
   exposition there at exit. *)
let install () =
  if not !installed then begin
    installed := true;
    match metrics_path () with
    | None -> ()
    | Some path ->
      Metric.enable ();
      at_exit (fun () -> write ~path)
  end
