(** Sliding-window rate estimators: rings of time-bucketed counts with
    an associative merge, backing the live λ / per-phase rate gauges
    and the rolling round-latency quantiles of the streaming telemetry
    plane.

    A window covers the last [span_s] seconds quantised into buckets of
    [bucket_s] seconds.  Writers pay one array update per record; reads
    fold the live buckets.  Every operation takes an optional [?now] so
    tests (and the QCheck laws) can drive the clock explicitly — the
    wall clock is only the default.  Instances are mutex-guarded and
    safe to share across threads. *)

type t
(** A windowed counter: the sum of recorded values per time bucket. *)

val create : ?bucket_s:float -> ?span_s:float -> unit -> t
(** Defaults: 0.25 s buckets over a 60 s span.
    @raise Invalid_argument on a non-positive bucket or span. *)

val bucket_seconds : t -> float
val span_seconds : t -> float

val add : ?now:float -> t -> float -> unit
(** Record [v] in the bucket covering [now]. *)

val mark : ?now:float -> t -> unit
(** Note that observation started (recording no count), so [rate]
    divides by the real elapsed time since the first mark/add rather
    than a bucket-aligned window start. *)

val total : ?now:float -> t -> float
(** Sum of the values recorded within the window ending at [now]
    (exact to within one bucket at the trailing edge). *)

val rate : ?now:float -> t -> float
(** [total] per second over the covered span — the elapsed time since
    the first mark/add, clamped to [[bucket_s, span_s]]; [0.] before
    any mark or add. *)

(** {1 Pure bucket lists (the merge the QCheck laws quantify over)} *)

type slots = (int * float) list
(** Live (bucket id, summed value) pairs in strictly increasing id
    order — the pure, order-canonical image of a window. *)

val snapshot : ?now:float -> t -> slots
(** The live buckets at [now], oldest first. *)

val merge : slots -> slots -> slots
(** Pointwise sum by bucket id.  Associative and commutative (the laws
    the tests check), so cluster-wide windows are independent of the
    order node contributions arrive in. *)

val slots_total : slots -> float

(** {1 Windowed histograms (rolling quantiles)} *)

type hist
(** A ring of per-bucket histogram shards sharing one bound layout. *)

val hist_create :
  ?bucket_s:float -> ?span_s:float -> ?buckets:float array -> unit -> hist
(** [buckets] defaults to {!Metric.default_buckets}.
    @raise Invalid_argument like {!create} / {!Metric.histogram}. *)

val hist_observe : ?now:float -> hist -> float -> unit
(** Record one observation in the time bucket covering [now]. *)

val hist_add : ?now:float -> hist -> Metric.snapshot -> unit
(** Fold a (delta) histogram snapshot into the bucket covering [now] —
    how the live store turns successive cumulative node snapshots into
    windowed ones.  A layout mismatch (untrusted input) is dropped, not
    fatal. *)

val hist_snapshot : ?now:float -> hist -> Metric.snapshot
(** Merged snapshot of the live buckets; feed {!Metric.quantile} for
    the rolling p50/p95/p99. *)
