(* SLO/alert rules over live metric values.

   Rules are plain data (metric name, comparison, threshold) so the CLI
   can parse them from the command line; the engine adds the stateful
   part — edge detection, first-fired latching, event-log entries and
   the synthesized csm_alerts_firing gauge family.  Evaluation reads a
   [values : string -> float list] lookup rather than the registry
   directly, so the same engine works over the cluster-merged live
   views, windowed gauges included. *)

type cmp = Gt | Ge | Lt | Le

let cmp_name = function Gt -> ">" | Ge -> ">=" | Lt -> "<" | Le -> "<="

let holds cmp v thr =
  match cmp with
  | Gt -> v > thr
  | Ge -> v >= thr
  | Lt -> v < thr
  | Le -> v <= thr

type rule = {
  a_name : string;
  a_metric : string;
  a_cmp : cmp;
  a_threshold : float;
  a_help : string;
}

let rule ?name ?(help = "") ~metric ~cmp threshold =
  {
    a_name = (match name with Some n -> n | None -> metric);
    a_metric = metric;
    a_cmp = cmp;
    a_threshold = threshold;
    a_help = help;
  }

let to_string r =
  Printf.sprintf "%s:%s%s%s" r.a_name r.a_metric (cmp_name r.a_cmp)
    (Json.float_repr r.a_threshold)

(* "name:metric>=thr" with an optional name prefix.  The metric must
   look like an exposition name so "a:b:c" stays unambiguous (names
   never contain ':'). *)
let parse spec =
  let spec = String.trim spec in
  let name, rest =
    match String.index_opt spec ':' with
    | Some i ->
      ( Some (String.trim (String.sub spec 0 i)),
        String.sub spec (i + 1) (String.length spec - i - 1) )
    | None -> (None, spec)
  in
  (* longest operators first so ">=" is not read as ">" "=" *)
  let ops = [ (">=", Ge); ("<=", Le); (">", Gt); ("<", Lt) ] in
  let split_on op =
    let ol = String.length op in
    let rec find i =
      if i + ol > String.length rest then None
      else if String.sub rest i ol = op then
        Some (String.trim (String.sub rest 0 i),
              String.trim (String.sub rest (i + ol) (String.length rest - i - ol)))
      else find (i + 1)
    in
    find 0
  in
  let metric_ok m =
    m <> ""
    && String.for_all
         (fun c ->
           (c >= 'a' && c <= 'z')
           || (c >= 'A' && c <= 'Z')
           || (c >= '0' && c <= '9')
           || c = '_')
         m
  in
  let rec try_ops = function
    | [] -> None
    | (op, cmp) :: rest_ops -> (
      match split_on op with
      | Some (metric, thr) when metric_ok metric -> (
        match float_of_string_opt thr with
        | Some threshold when Float.is_finite threshold ->
          Some (rule ?name ~metric ~cmp threshold)
        | _ -> None)
      | _ -> try_ops rest_ops)
  in
  let name_ok n =
    n <> ""
    && String.for_all
         (fun c ->
           (c >= 'a' && c <= 'z')
           || (c >= 'A' && c <= 'Z')
           || (c >= '0' && c <= '9')
           || c = '_' || c = '-')
         n
  in
  match name with
  | Some n when not (name_ok n) -> None
  | _ -> try_ops ops

let default_rules ?lambda_floor () =
  [
    rule ~name:"suspicion" ~help:"a node accumulated decoder error locations"
      ~metric:"csm_node_suspicion" ~cmp:Gt 0.0;
    rule ~name:"hlc-skew"
      ~help:"a node's hybrid logical clock drifted off its wall clock"
      ~metric:"csm_hlc_skew_seconds" ~cmp:Gt 0.5;
    rule ~name:"frame-errors"
      ~help:"malformed transport frames were detected (and dropped)"
      ~metric:"csm_transport_frame_errors_total" ~cmp:Gt 0.0;
  ]
  @
  match lambda_floor with
  | None -> []
  | Some floor ->
    [
      rule ~name:"lambda-floor"
        ~help:"windowed committed-command throughput fell below the SLO floor"
        ~metric:"csm_window_lambda" ~cmp:Lt floor;
    ]

(* ----- the engine ----- *)

type state = {
  s_rule : rule;
  mutable s_firing : bool;
  mutable s_value : float;  (* the tripping (worst) value when firing *)
  mutable s_first : float option;  (* mono time of the first rising edge *)
  mutable s_edges : int;  (* rising edges seen *)
}

type engine = { states : state list; lock : Mutex.t }

let create rules =
  {
    states =
      List.map
        (fun r ->
          { s_rule = r; s_firing = false; s_value = 0.0; s_first = None; s_edges = 0 })
        rules;
    lock = Mutex.create ();
  }

let locked e f =
  Mutex.lock e.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock e.lock) f

let rules e = List.map (fun s -> s.s_rule) e.states

(* The value a rule is judged on: the worst sample in its direction —
   max for upper bounds, min for lower bounds.  No samples = no data =
   not firing (a missing family must not page). *)
let worst cmp values =
  match values with
  | [] -> None
  | v :: rest ->
    let pick = match cmp with Gt | Ge -> Float.max | Lt | Le -> Float.min in
    Some (List.fold_left pick v rest)

let evaluate e ?now values =
  let now = match now with Some n -> n | None -> Clock.mono () in
  let transitions =
    locked e (fun () ->
        List.filter_map
          (fun s ->
            let r = s.s_rule in
            let fired, value =
              match worst r.a_cmp (values r.a_metric) with
              | Some v -> (holds r.a_cmp v r.a_threshold, v)
              | None -> (false, 0.0)
            in
            let edge =
              if fired && not s.s_firing then begin
                s.s_edges <- s.s_edges + 1;
                if s.s_first = None then s.s_first <- Some now;
                Some (r, true, value)
              end
              else if (not fired) && s.s_firing then Some (r, false, value)
              else None
            in
            s.s_firing <- fired;
            if fired then s.s_value <- value;
            edge)
          e.states)
  in
  (* event emission outside the engine lock: the event ring has its own *)
  List.iter
    (fun (r, rising, value) ->
      let attrs =
        [
          ("rule", r.a_name);
          ("metric", r.a_metric);
          ("value", Json.float_repr value);
          ("threshold", Json.float_repr r.a_threshold);
        ]
      in
      if rising then Event.emit ~attrs Event.Warn "alert.firing"
      else Event.emit ~attrs Event.Info "alert.resolved")
    transitions;
  List.filter_map
    (fun (r, rising, value) -> if rising then Some (r, value) else None)
    transitions

let firing e =
  locked e (fun () ->
      List.filter_map
        (fun s -> if s.s_firing then Some (s.s_rule, s.s_value) else None)
        e.states)

let fired_ever e = locked e (fun () -> List.exists (fun s -> s.s_edges > 0) e.states)

let first_fired e name =
  locked e (fun () ->
      List.fold_left
        (fun acc s ->
          if s.s_rule.a_name = name then s.s_first else acc)
        None e.states)

let views e =
  let samples =
    locked e (fun () ->
        List.map
          (fun s ->
            {
              Metric.labels = [ ("rule", s.s_rule.a_name) ];
              value = Metric.V_gauge (if s.s_firing then 1.0 else 0.0);
            })
          e.states)
  in
  match samples with
  | [] -> []
  | _ ->
    [
      {
        Metric.name = "csm_alerts_firing";
        help = "SLO alert rules currently firing (1 firing, 0 quiet)";
        kind = Metric.K_gauge;
        samples =
          List.sort
            (fun (a : Metric.sample) b -> compare a.Metric.labels b.Metric.labels)
            samples;
      };
    ]
