(** Domain-safe span tracer: wall-clock spans with nesting, owning
    domain, and per-span field-operation deltas.

    Tracing is globally gated: with it disabled [with_] is one atomic
    load plus the thunk call — no allocation, no buffered record — so
    instrumented hot paths cost nothing in ordinary runs.  Enabled,
    spans accumulate in per-domain buffers (no locking on the parallel
    pool's hot path) and are merged and sorted at collection time. *)

type record = {
  id : int;  (** process-unique id (atomic counter) *)
  parent : int;  (** enclosing span id in the same domain; -1 = root *)
  name : string;
  attrs : (string * string) list;
  domain : int;  (** emitting domain's [Domain.self] *)
  depth : int;  (** nesting depth within the emitting domain *)
  start_s : float;  (** wall-clock start (seconds) *)
  dur_s : float;  (** duration (seconds) *)
  d_adds : int;  (** field-op deltas over the span (0 without a source) *)
  d_muls : int;
  d_invs : int;
}

type ops = unit -> int * int * int
(** An operation source: current (adds, muls, invs) totals; sampled at
    span start and end, the difference is stored on the record.
    Typically [Scope.ops] / [Ledger.op_totals]. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val with_ :
  ?attrs:(string * string) list -> ?ops:ops -> name:string -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f] inside a span.  Exception-safe (the span
    is recorded, then the exception re-raised).  A no-op when tracing
    is disabled. *)

val records : unit -> record list
(** All completed spans from every domain, sorted by (start, id).  Call
    when the traced workload is quiescent (buffers of running domains
    are read without synchronization). *)

val flush : unit -> record list
(** [records] + clear all buffers. *)

val reset : unit -> unit
(** Drop all buffered spans (and any stale open-span stacks). *)

val total_ops : record -> int
(** [d_adds + d_muls + d_invs] (unweighted). *)
