(** Prometheus text-format (0.0.4) exposition of the [Metric]
    registry: HELP/TYPE headers, escaped label values, histograms as
    cumulative [_bucket{le=...}] + [_sum] + [_count]. *)

val render : unit -> string
(** The full exposition document for every registered family. *)

val render_views : Metric.view list -> string
(** Exposition of an explicit view list — e.g. the cluster-merged
    views from [Agg.merged_views] rather than the local registry. *)

val write : path:string -> unit

val output : out_channel -> unit

val metrics_path : unit -> string option
(** [CSM_METRICS] if set. *)

val install : unit -> unit
(** Read [CSM_METRICS] once; when set, enable the metrics registry and
    register an at-exit exposition write to that path.  Idempotent;
    free when unset. *)

(**/**)

val label_block : Metric.labels -> string
val float_str : float -> string
