(** Per-span-name latency/operation summaries (p50 / p95 / max). *)

type stat = {
  s_name : string;
  count : int;
  total_s : float;
  p50_s : float;  (** nearest-rank median duration (seconds) *)
  p95_s : float;
  max_s : float;
  adds : int;  (** summed op deltas over all spans of this name *)
  muls : int;
  invs : int;
}

val percentile : float array -> float -> float
(** [percentile sorted q] — nearest-rank percentile, [q] in [0, 1];
    [0.0] on an empty array. *)

val by_name : Span.record list -> stat list
(** One stat per distinct span name, sorted by name. *)

val pp_stat : Format.formatter -> stat -> unit
