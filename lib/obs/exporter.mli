(** Span exporters: Chrome trace-event JSON (chrome://tracing /
    Perfetto) and building blocks for the self-describing run-report
    JSON.  Environment-gated via [install] — zero overhead when
    [CSM_TRACE] is unset. *)

val chrome_trace : Span.record list -> Json.t
(** The ["traceEvents"] object: one complete ("X") event per span,
    [tid] = owning domain, timestamps rebased to the earliest span. *)

val write_chrome_trace : path:string -> Span.record list -> unit

val host : ?domains:int -> unit -> Json.t
(** Host metadata (OCaml version, word size, core count, configured
    domain count) for embedding in reports. *)

val span_summary_json : Summary.stat list -> Json.t
(** Per-span-name p50/p95/max + op totals, as a JSON list. *)

val metrics_json : unit -> Json.t
(** The metrics registry as a JSON list of families (for the
    [csm-run-report/2] "metrics" section); histograms include bucket
    bounds, per-bucket counts and p50/p95 estimates. *)

val trace_path : unit -> string option
(** [CSM_TRACE] if set. *)

val report_path : unit -> string option
(** [CSM_REPORT] if set. *)

val install : unit -> unit
(** Read [CSM_TRACE], [CSM_EVENTS] and [CSM_METRICS] once and activate
    the matching channels (span tracing with an at-exit Chrome-trace
    flush, event log level, metrics registry with an at-exit Prometheus
    write).  Idempotent; does nothing (and costs nothing) when the
    variables are unset. *)
