(** Hybrid logical clock: per-process stamps close to wall time but
    causally consistent — [observe]d receive stamps strictly exceed the
    sender's stamp, so one integer comparison orders cross-node events
    in the merged cluster trace even when host wall clocks disagree.

    A stamp is one native int, milliseconds in the high bits and a
    16-bit logical tie-breaker in the low bits, so plain [Int.compare]
    is the causal order and a stamp crosses the wire as the frame
    extension's u64 unchanged.  Domain-safe: all updates are CAS loops
    on one atomic. *)

type stamp = int

val now : unit -> stamp
(** Issue a send stamp: strictly greater than every stamp this process
    issued before, and at least the current wall millisecond. *)

val observe : stamp -> stamp
(** Merge a remote stamp on receive and issue the local stamp for the
    receive event: strictly greater than both the remote stamp and
    every prior local stamp. *)

val peek : unit -> stamp
(** The clock's current value, without advancing it. *)

val join : stamp -> stamp -> stamp
(** Componentwise max — commutative, associative, idempotent; the fold
    the telemetry aggregator uses across node stamps. *)

val compare : stamp -> stamp -> int
(** Causal order; equals [Int.compare]. *)

val ms : stamp -> int
(** Physical component, milliseconds since the epoch. *)

val count : stamp -> int
(** Logical component (0 .. 2¹⁶−1). *)

val pack : ms:int -> count:int -> stamp
(** @raise Invalid_argument on a negative ms or out-of-range count. *)

val seconds : stamp -> float
(** Physical component in seconds (for trace timestamps). *)

val to_wire : stamp -> int64
(** The frame-extension encoding. *)

val of_wire : int64 -> stamp
(** Total inverse of [to_wire]: an out-of-range u64 from an untrusted
    peer clamps to stamp 0, which merges as a no-op. *)

val skew_seconds : stamp -> float
(** |physical component − wall clock now|: how far causality (or a
    clock step) has pulled this process's HLC away from real time. *)

val reset : unit -> unit
(** Rewind to 0 (tests and forked children only). *)

val mono : unit -> float
(** Never-decreasing wall-clock seconds: [Unix.gettimeofday] clamped so
    a backwards step (NTP, VM migration) cannot produce negative
    deltas.  Shared by the event log's [mono] field. *)

val pp : Format.formatter -> stamp -> unit
