(** The client-side live telemetry store: merge the nodes' streaming
    [csm-node-telemetry/2] deltas idempotently, derive windowed rates
    and rolling latency quantiles, evaluate the SLO alert rules on
    every merge, and render it all as a Prometheus exposition for the
    HTTP scrape endpoint and the terminal ticker.

    Idempotency: each source (one registry — (pid, node) for forked
    nodes, pid alone for a shared loopback registry) carries a
    monotone sequence number; a delta at or below the source's applied
    sequence is dropped, so duplicated or reordered frames never
    corrupt the aggregates, and because delta values are cumulative a
    lost frame self-heals on the next arrival.  All entry points are
    thread-safe (the scrape endpoint reads while the client merges). *)

type t

val create :
  ?rules:Alert.rule list ->
  ?on_alert:(Alert.rule -> float -> unit) ->
  ?bucket_s:float ->
  ?span_s:float ->
  k:int ->
  unit ->
  t
(** [rules] defaults to {!Alert.default_rules}; [on_alert] runs once
    per rule rising edge (e.g. to arm a flight-recorder dump); [k] is
    the commands-per-round γ the λ window counts per commit.  Window
    geometry defaults to 50 ms buckets over a 60 s span. *)

val mark_start : ?now:float -> t -> unit
(** Anchor the λ window's covered span at the run start, so the
    windowed rate and the whole-run average share a time origin. *)

val apply : t -> string -> [ `Applied | `Stale | `Malformed ]
(** Merge one Telemetry frame payload.  [`Stale] = duplicate or
    reordered (sequence at or below the last applied — dropped,
    harmless); [`Malformed] = not a well-formed
    [csm-node-telemetry/2] document (count it as a frame error). *)

val note_commit : ?now:float -> t -> unit
(** The client accepted one round (k commands) — the λ feed. *)

val commits : t -> int
val lambda : ?now:float -> t -> float
(** Windowed committed-command throughput, commands/second. *)

val deltas : t -> int * int * int
(** (applied, stale, rejected) delta counts. *)

val alerts : t -> Alert.engine

val node_views : t -> Metric.view list
(** The cluster-merged cumulative views from the applied deltas alone
    (no windowed/alert synthetics) — deterministic for a fixed set of
    applied payloads, which the delta-merge determinism gate relies
    on. *)

val views : ?now:float -> t -> Metric.view list
(** [node_views] plus the synthesized families: [csm_window_*]
    (λ, γ, per-phase rates, rolling latency quantiles, frame-error
    rate), [csm_alerts_firing], and the store's own
    [csm_live_deltas_*] counters. *)

val scrape : ?now:float -> t -> string
(** The Prometheus exposition of [views] — the [/metrics] body. *)

val windows_json : ?now:float -> t -> Json.t
(** The [/windows.json] document ([csm-live-windows/1]): commit count,
    windowed rates, latency quantiles, alert states, delta counters
    and per-source sequence numbers. *)

val evaluate_alerts : ?now:float -> t -> unit
(** Re-run the rules against the current views (also done after every
    [apply]/[note_commit]) — e.g. on a watch tick while no deltas
    arrive. *)
