(* The client-side live telemetry store.

   Ingestion rule, per source (a source is one metric registry: a
   forked node process keys as (pid, node index), a shared loopback
   registry as (pid, -1)): apply a delta iff its sequence number is
   strictly beyond the source's last applied one.  Deltas carry
   CUMULATIVE family values, so this "newest wins" rule is idempotent
   under duplication and reordering, and a lost frame merely delays
   freshness until the next arrival (or the periodic full snapshot)
   instead of corrupting a sum.

   Rates come from diffing: when a delta lands, the increment of each
   windowed family over the source's previous cumulative value is fed
   into the matching {!Window} at arrival time.  λ is special — the
   client is the ground truth for commits, so [note_commit] feeds the
   λ window directly (k commands per accepted round) instead of
   summing per-node counters, which would overcount by the replication
   factor. *)

let wall () = Unix.gettimeofday ()

type source = {
  src_node : int;
  src_scope : Agg.scope;
  mutable src_seq : int;  (* highest applied delta sequence *)
  mutable src_hlc : Clock.stamp;
  mutable src_events_total : int;
  mutable src_events_dropped : int;
  families : (string, Metric.view) Hashtbl.t;  (* latest cumulative views *)
}

type t = {
  lock : Mutex.t;
  k : int;
  bucket_s : float;
  span_s : float;
  sources : (int * int, source) Hashtbl.t;
  engine : Alert.engine;
  on_alert : (Alert.rule -> float -> unit) option;
  lambda_w : Window.t;
  latency_w : Window.hist;
  phase_w : (string, Window.t) Hashtbl.t;
  frame_err_w : Window.t;
  mutable n_commits : int;
  mutable n_applied : int;
  mutable n_stale : int;
  mutable n_rejected : int;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ?rules ?on_alert ?(bucket_s = 0.05) ?(span_s = 60.0) ~k () =
  let rules =
    match rules with Some r -> r | None -> Alert.default_rules ()
  in
  {
    lock = Mutex.create ();
    k;
    bucket_s;
    span_s;
    sources = Hashtbl.create 8;
    engine = Alert.create rules;
    on_alert;
    lambda_w = Window.create ~bucket_s ~span_s ();
    latency_w = Window.hist_create ~bucket_s ~span_s ();
    phase_w = Hashtbl.create 8;
    frame_err_w = Window.create ~bucket_s ~span_s ();
    n_commits = 0;
    n_applied = 0;
    n_stale = 0;
    n_rejected = 0;
  }

let mark_start ?now t = Window.mark ?now t.lambda_w

(* ----- views ----- *)

let sample_values (v : Metric.view) =
  List.filter_map
    (fun (s : Metric.sample) ->
      match s.Metric.value with
      | Metric.V_counter c -> Some (float_of_int c)
      | Metric.V_gauge g -> Some g
      | Metric.V_histogram h -> Some (float_of_int h.Metric.s_count))
    v.Metric.samples

let node_views t =
  let lists =
    locked t (fun () ->
        let per_source =
          Hashtbl.fold
            (fun _ src acc ->
              let vs = Hashtbl.fold (fun _ v acc -> v :: acc) src.families [] in
              (src.src_node,
               List.sort
                 (fun (a : Metric.view) b ->
                   String.compare a.Metric.name b.Metric.name)
                 vs)
              :: acc)
            t.sources []
        in
        (* canonical source order so the merged result is deterministic
           for a fixed set of applied deltas, whatever their arrival
           interleaving was *)
        List.map snd
          (List.sort
             (fun (a, _) (b, _) -> Int.compare a b)
             per_source))
  in
  Agg.merge_views lists

let gauge_view ~name ~help samples =
  {
    Metric.name;
    help;
    kind = Metric.K_gauge;
    samples =
      List.map
        (fun (labels, v) -> { Metric.labels; value = Metric.V_gauge v })
        samples;
  }

let counter_view ~name ~help v =
  {
    Metric.name;
    help;
    kind = Metric.K_counter;
    samples = [ { Metric.labels = []; value = Metric.V_counter v } ];
  }

let lambda ?now t = Window.rate ?now t.lambda_w

let window_views ?now t =
  let now = match now with Some n -> n | None -> wall () in
  let lam = Window.rate ~now t.lambda_w in
  let phases =
    locked t (fun () ->
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          (Hashtbl.fold (fun p w acc -> (p, w) :: acc) t.phase_w []))
  in
  let latency = Window.hist_snapshot ~now t.latency_w in
  let q q' = Metric.quantile latency q' in
  [
    gauge_view ~name:"csm_window_lambda"
      ~help:"Windowed committed-command throughput λ, commands/second"
      [ ([], lam) ];
    gauge_view ~name:"csm_window_gamma"
      ~help:"Storage efficiency γ = K carried by each committed round"
      [ ([], float_of_int t.k) ];
    gauge_view ~name:"csm_window_round_latency_seconds"
      ~help:"Rolling protocol round latency quantiles over the live window"
      [
        ([ ("quantile", "0.5") ], q 0.5);
        ([ ("quantile", "0.95") ], q 0.95);
        ([ ("quantile", "0.99") ], q 0.99);
      ];
    gauge_view ~name:"csm_window_frame_error_rate"
      ~help:"Windowed malformed-transport-frame rate, errors/second"
      [ ([], Window.rate ~now t.frame_err_w) ];
  ]
  @
  match phases with
  | [] -> []
  | _ ->
    [
      gauge_view ~name:"csm_window_phase_rate"
        ~help:"Windowed node phase completion rate, phases/second"
        (List.map (fun (p, w) -> ([ ("phase", p) ], Window.rate ~now w)) phases);
    ]

let live_views t =
  let applied, stale, rejected =
    locked t (fun () -> (t.n_applied, t.n_stale, t.n_rejected))
  in
  [
    counter_view ~name:"csm_live_deltas_applied_total"
      ~help:"Streaming telemetry deltas merged into the live store" applied;
    counter_view ~name:"csm_live_deltas_stale_total"
      ~help:"Duplicated or reordered deltas dropped by the sequence rule" stale;
    counter_view ~name:"csm_live_deltas_rejected_total"
      ~help:"Malformed streaming telemetry payloads rejected" rejected;
  ]

let views ?now t =
  node_views t @ window_views ?now t @ Alert.views t.engine @ live_views t

let scrape ?now t = Prom.render_views (views ?now t)

(* ----- alert evaluation ----- *)

let evaluate_alerts ?now t =
  let vs = views ?now t in
  let lookup name =
    match List.find_opt (fun (v : Metric.view) -> v.Metric.name = name) vs with
    | None -> []
    | Some v -> sample_values v
  in
  let rising = Alert.evaluate t.engine lookup in
  List.iter
    (fun (r, value) ->
      if Metric.enabled () then
        Metric.inc (Telemetry.alerts_fired ~rule:r.Alert.a_name);
      match t.on_alert with Some f -> f r value | None -> ())
    rising

(* ----- ingestion ----- *)

let note_commit ?now t =
  let now = match now with Some n -> n | None -> wall () in
  locked t (fun () ->
      t.n_commits <- t.n_commits + 1;
      Window.add ~now t.lambda_w (float_of_int t.k));
  evaluate_alerts ~now t

let commits t = locked t (fun () -> t.n_commits)

let counter_of (s : Metric.sample) =
  match s.Metric.value with Metric.V_counter c -> Some c | _ -> None

let hist_of (s : Metric.sample) =
  match s.Metric.value with Metric.V_histogram h -> Some h | _ -> None

let find_sample (prev : Metric.view option) labels =
  match prev with
  | None -> None
  | Some v ->
    List.find_opt
      (fun (s : Metric.sample) -> s.Metric.labels = labels)
      v.Metric.samples

let snap_diff prev (cur : Metric.snapshot) =
  match prev with
  | Some (p : Metric.snapshot)
    when Array.length p.Metric.s_bounds = Array.length cur.Metric.s_bounds
         && Array.length p.Metric.s_counts = Array.length cur.Metric.s_counts ->
    {
      Metric.s_bounds = cur.Metric.s_bounds;
      s_counts =
        Array.mapi
          (fun i c -> max 0 (c - p.Metric.s_counts.(i)))
          cur.Metric.s_counts;
      s_sum = Float.max 0.0 (cur.Metric.s_sum -. p.Metric.s_sum);
      s_count = max 0 (cur.Metric.s_count - p.Metric.s_count);
    }
  | _ -> cur

let phase_window t p =
  match Hashtbl.find_opt t.phase_w p with
  | Some w -> w
  | None ->
    let w = Window.create ~bucket_s:t.bucket_s ~span_s:t.span_s () in
    Hashtbl.replace t.phase_w p w;
    w

(* Feed the increment of a freshly-arrived cumulative view over the
   source's previous one into the matching window.  Called under the
   store lock. *)
let feed_windows t src ~now (v : Metric.view) =
  let prev = Hashtbl.find_opt src.families v.Metric.name in
  match v.Metric.name with
  | "csm_round_latency_seconds" ->
    List.iter
      (fun (s : Metric.sample) ->
        match hist_of s with
        | Some cur ->
          let d =
            snap_diff
              (Option.bind (find_sample prev s.Metric.labels) hist_of)
              cur
          in
          if d.Metric.s_count > 0 then Window.hist_add ~now t.latency_w d
        | None -> ())
      v.Metric.samples
  | "csm_node_phases_total" ->
    List.iter
      (fun (s : Metric.sample) ->
        match (counter_of s, List.assoc_opt "phase" s.Metric.labels) with
        | Some cur, Some p ->
          let before =
            Option.value ~default:0
              (Option.bind (find_sample prev s.Metric.labels) counter_of)
          in
          if cur > before then
            Window.add ~now (phase_window t p) (float_of_int (cur - before))
        | _ -> ())
      v.Metric.samples
  | "csm_transport_frame_errors_total" ->
    List.iter
      (fun (s : Metric.sample) ->
        match counter_of s with
        | Some cur ->
          let before =
            Option.value ~default:0
              (Option.bind (find_sample prev s.Metric.labels) counter_of)
          in
          if cur > before then
            Window.add ~now t.frame_err_w (float_of_int (cur - before))
        | None -> ())
      v.Metric.samples
  | _ -> ()

let source_key (d : Agg.delta) =
  match d.Agg.d_scope with
  | Agg.Process -> (d.Agg.d_pid, -1)
  | Agg.Node -> (d.Agg.d_pid, d.Agg.d_node)

let apply t payload =
  match Agg.decode_delta payload with
  | None ->
    locked t (fun () -> t.n_rejected <- t.n_rejected + 1);
    `Malformed
  | Some d ->
    let now = wall () in
    let outcome =
      locked t (fun () ->
          let key = source_key d in
          let src =
            match Hashtbl.find_opt t.sources key with
            | Some s -> s
            | None ->
              let s =
                {
                  src_node = d.Agg.d_node;
                  src_scope = d.Agg.d_scope;
                  src_seq = 0;
                  src_hlc = 0;
                  src_events_total = 0;
                  src_events_dropped = 0;
                  families = Hashtbl.create 32;
                }
              in
              Hashtbl.replace t.sources key s;
              s
          in
          if d.Agg.d_seq <= src.src_seq then begin
            t.n_stale <- t.n_stale + 1;
            `Stale
          end
          else begin
            List.iter
              (fun (v : Metric.view) ->
                feed_windows t src ~now v;
                Hashtbl.replace src.families v.Metric.name v)
              d.Agg.d_views;
            src.src_seq <- d.Agg.d_seq;
            src.src_hlc <- Clock.join src.src_hlc d.Agg.d_hlc;
            src.src_events_total <- max src.src_events_total d.Agg.d_events_total;
            src.src_events_dropped <-
              max src.src_events_dropped d.Agg.d_events_dropped;
            t.n_applied <- t.n_applied + 1;
            `Applied
          end)
    in
    if outcome = `Applied then evaluate_alerts ~now t;
    outcome

let deltas t = locked t (fun () -> (t.n_applied, t.n_stale, t.n_rejected))
let alerts t = t.engine

(* ----- /windows.json ----- *)

let windows_json ?now t =
  let now = match now with Some n -> n | None -> wall () in
  let latency = Window.hist_snapshot ~now t.latency_w in
  let q q' = Metric.quantile latency q' in
  let commits, applied, stale, rejected, sources =
    locked t (fun () ->
        ( t.n_commits,
          t.n_applied,
          t.n_stale,
          t.n_rejected,
          List.sort
            (fun (a, _) (b, _) -> compare a b)
            (Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.sources []) ))
  in
  let phases =
    locked t (fun () ->
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          (Hashtbl.fold (fun p w acc -> (p, w) :: acc) t.phase_w []))
  in
  Json.Obj
    [
      ("schema", Json.Str "csm-live-windows/1");
      ("commits", Json.Int commits);
      ("lambda", Json.Float (Window.rate ~now t.lambda_w));
      ("gamma", Json.Int t.k);
      ( "round_latency",
        Json.Obj
          [
            ("p50", Json.Float (q 0.5));
            ("p95", Json.Float (q 0.95));
            ("p99", Json.Float (q 0.99));
            ("count", Json.Int latency.Metric.s_count);
          ] );
      ( "phase_rates",
        Json.Obj
          (List.map
             (fun (p, w) -> (p, Json.Float (Window.rate ~now w)))
             phases) );
      ("frame_error_rate", Json.Float (Window.rate ~now t.frame_err_w));
      ( "alerts",
        Json.List
          (List.map
             (fun (r, v) ->
               Json.Obj
                 [
                   ("rule", Json.Str r.Alert.a_name);
                   ("metric", Json.Str r.Alert.a_metric);
                   ("value", Json.Float v);
                 ])
             (Alert.firing t.engine)) );
      ( "deltas",
        Json.Obj
          [
            ("applied", Json.Int applied);
            ("stale", Json.Int stale);
            ("rejected", Json.Int rejected);
          ] );
      ( "sources",
        Json.List
          (List.map
             (fun ((pid, _), src) ->
               Json.Obj
                 [
                   ("pid", Json.Int pid);
                   ("node", Json.Int src.src_node);
                   ("registry", Json.Str (Agg.scope_name src.src_scope));
                   ("seq", Json.Int src.src_seq);
                   ("hlc", Json.Int src.src_hlc);
                   ("events_total", Json.Int src.src_events_total);
                   ("events_dropped", Json.Int src.src_events_dropped);
                 ])
             sources) );
    ]
