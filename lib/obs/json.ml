(* Minimal JSON emitter and parser for the exporters and the bench
   regression gate (no external dependency).

   Strings are escaped per RFC 8259; non-finite floats have no JSON
   representation and are emitted as null so every produced document
   stays parseable.  Finite floats use the shortest decimal form that
   round-trips exactly (%.15g, widening to %.16g / %.17g only when
   needed), so nanosecond-scale timestamps survive an emit/parse
   cycle bit-for-bit. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal representation that parses back to exactly [f].
   %.15g suffices for most values; 17 significant digits always
   round-trip an IEEE double. *)
let float_repr f =
  let s = Printf.sprintf "%.15g" f in
  if float_of_string s = f then s
  else
    let s = Printf.sprintf "%.16g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (float_repr f)
    else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  to_buffer buf v;
  Buffer.contents buf

let write ~path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')

(* ----- parsing ----- *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else fail "unexpected end of input" in
  let advance () = incr pos in
  let rec skip_ws () =
    if
      !pos < n
      && match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false
    then begin
      advance ();
      skip_ws ()
    end
  in
  let expect c =
    skip_ws ();
    if peek () <> c then fail "expected %C at offset %d" c !pos;
    advance ()
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal at offset %d" !pos
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | 'u' ->
          advance ();
          let code = ref 0 in
          for _ = 1 to 4 do
            code := (!code * 16) + hex_digit (peek ());
            advance ()
          done;
          (* UTF-8 encode the BMP code point (surrogate pairs are kept
             as two encoded halves — fine for our ASCII payloads) *)
          let c = !code in
          if c < 0x80 then Buffer.add_char b (Char.chr c)
          else if c < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (c lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (c land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (c lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (c land 0x3F)))
          end
        | '"' -> advance (); Buffer.add_char b '"'
        | '\\' -> advance (); Buffer.add_char b '\\'
        | '/' -> advance (); Buffer.add_char b '/'
        | 'b' -> advance (); Buffer.add_char b '\b'
        | 'f' -> advance (); Buffer.add_char b '\012'
        | 'n' -> advance (); Buffer.add_char b '\n'
        | 'r' -> advance (); Buffer.add_char b '\r'
        | 't' -> advance (); Buffer.add_char b '\t'
        | c -> fail "bad escape \\%C" c);
        go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = '-' then advance ();
    let digits () =
      let d = ref 0 in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ();
        incr d
      done;
      if !d = 0 then fail "bad number at offset %d" start
    in
    digits ();
    if !pos < n && s.[!pos] = '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    if !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
      is_float := true;
      advance ();
      if !pos < n && (s.[!pos] = '+' || s.[!pos] = '-') then advance ();
      digits ()
    end;
    let tok = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> Float (float_of_string tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((key, v) :: acc)
          | '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | c -> fail "expected , or } but found %C at offset %d" c !pos
        in
        members []
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elems (v :: acc)
          | ']' ->
            advance ();
            List (List.rev (v :: acc))
          | c -> fail "expected , or ] but found %C at offset %d" c !pos
        in
        elems []
      end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | '-' | '0' .. '9' -> parse_number ()
    | c -> fail "unexpected %C at offset %d" c !pos
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage at offset %d" !pos;
  v

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* ----- accessors (regression gate / tests) ----- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
