(* Minimal JSON emitter for the exporters (no external dependency).

   Strings are escaped per RFC 8259; non-finite floats have no JSON
   representation and are emitted as null so every produced document
   stays parseable. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
    else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  to_buffer buf v;
  Buffer.contents buf

let write ~path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')
