(* Cluster telemetry aggregation: the serialization, merging and
   rendering behind the end-of-run [Telemetry] frame.

   Node side, [bundle_json] snapshots the process's observability state
   — metric registry, span buffers, event-log tail, HLC, plus the
   node's own flight-recorder ring — into one self-describing
   [csm-node-telemetry/1] JSON document that rides a Telemetry frame's
   payload.

   Client side, [decode_bundle] parses that payload back (total: a
   Byzantine node's garbage yields [None] and is counted like any other
   malformed frame), and the merge functions fold many bundles into
   - one cluster-wide metric-view list (counters sum, gauges take the
     max, histograms use [Metric.merge] — all associative and
     commutative, so arrival order cannot change the exposition), and
   - one merged Chrome trace where every node's spans appear under its
     own pid and matched flight-recorder send/recv entries render as
     flow arrows between processes, timestamped from their HLC stamps
     so the arrows are ordered consistently even across hosts whose
     wall clocks disagree.

   Loopback wrinkle: node runtimes in one process share the registry,
   span buffers and event ring, so their bundles carry near-identical
   copies.  Merging dedups those channels by pid (keeping the bundle
   with the latest HLC snapshot); flight rings are per-instance and are
   always all kept. *)

let schema = "csm-node-telemetry/1"
let schema_v2 = "csm-node-telemetry/2"

(* What one bundle/delta's metric views describe.  Loopback node
   runtimes share one process-wide registry (scope [Process]): their
   snapshots are near-identical copies and must be deduped by pid
   alone.  Forked node processes own their registry (scope [Node]):
   even if two hosts' pids collide, their (pid, node) keys cannot. *)
type scope = Process | Node

let scope_name = function Process -> "process" | Node -> "node"

let scope_of_name = function
  | "process" -> Some Process
  | "node" -> Some Node
  | _ -> None

type bundle = {
  b_node : int;
  b_pid : int;
  b_scope : scope;
  b_hlc : Clock.stamp;  (* the node's clock when it snapshotted *)
  b_views : Metric.view list;
  b_spans : Span.record list;
  b_events : Event.t list;
  b_flight : Flight.entry list;
  b_flight_recorded : int;
}

(* ----- node side: snapshot to JSON ----- *)

let attrs_json attrs =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) attrs)

let span_json (r : Span.record) =
  Json.Obj
    [
      ("id", Json.Int r.Span.id);
      ("parent", Json.Int r.Span.parent);
      ("name", Json.Str r.Span.name);
      ("attrs", attrs_json r.Span.attrs);
      ("domain", Json.Int r.Span.domain);
      ("depth", Json.Int r.Span.depth);
      ("start_s", Json.Float r.Span.start_s);
      ("dur_s", Json.Float r.Span.dur_s);
      ("adds", Json.Int r.Span.d_adds);
      ("muls", Json.Int r.Span.d_muls);
      ("invs", Json.Int r.Span.d_invs);
    ]

let event_json (e : Event.t) =
  Json.Obj
    [
      ("seq", Json.Int e.Event.seq);
      ("ts", Json.Float e.Event.ts);
      ("mono", Json.Float e.Event.mono);
      ("level", Json.Str (Event.level_name e.Event.level));
      ("name", Json.Str e.Event.name);
      ("attrs", attrs_json e.Event.attrs);
    ]

let value_json = function
  | Metric.V_counter c -> [ ("value", Json.Int c) ]
  | Metric.V_gauge g -> [ ("value", Json.Float g) ]
  | Metric.V_histogram h ->
    [
      ( "buckets",
        Json.List
          (Array.to_list (Array.map (fun b -> Json.Float b) h.Metric.s_bounds)) );
      ( "counts",
        Json.List
          (Array.to_list (Array.map (fun c -> Json.Int c) h.Metric.s_counts)) );
      ("sum", Json.Float h.Metric.s_sum);
      ("count", Json.Int h.Metric.s_count);
    ]

let view_json (v : Metric.view) =
  Json.Obj
    [
      ("name", Json.Str v.Metric.name);
      ("help", Json.Str v.Metric.help);
      ( "kind",
        Json.Str
          (match v.Metric.kind with
          | Metric.K_counter -> "counter"
          | Metric.K_gauge -> "gauge"
          | Metric.K_histogram -> "histogram") );
      ( "samples",
        Json.List
          (List.map
             (fun (s : Metric.sample) ->
               Json.Obj
                 (("labels", attrs_json s.Metric.labels) :: value_json s.Metric.value))
             v.Metric.samples) );
    ]

let bundle_json ?(scope = Process) ~node ~flight () =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("node", Json.Int node);
      ("pid", Json.Int (Unix.getpid ()));
      ("registry", Json.Str (scope_name scope));
      ("hlc", Json.Int (Clock.peek ()));
      ("events_total", Json.Int (Event.total ()));
      ("events_dropped", Json.Int (Event.dropped ()));
      ("metrics", Json.List (List.map view_json (Metric.families ())));
      ("spans", Json.List (List.map span_json (Span.records ())));
      ("events", Json.List (List.map event_json (Event.recent ())));
      ("flight", Flight.to_json flight);
    ]

let bundle_payload ?scope ~node ~flight () =
  Json.to_string (bundle_json ?scope ~node ~flight ())

(* ----- client side: total parsing ----- *)

let opt_all f xs =
  List.fold_right
    (fun x acc ->
      match (f x, acc) with
      | Some y, Some ys -> Some (y :: ys)
      | _ -> None)
    xs (Some [])

let attrs_of_json = function
  | Some (Json.Obj kvs) ->
    Some
      (List.filter_map
         (fun (k, v) ->
           match Json.to_string_opt v with Some s -> Some (k, s) | None -> None)
         kvs)
  | None -> Some []
  | _ -> None

let mem_int key j = Option.bind (Json.member key j) Json.to_int_opt
let mem_float key j = Option.bind (Json.member key j) Json.to_float_opt
let mem_str key j = Option.bind (Json.member key j) Json.to_string_opt

let span_of_json j =
  match
    ( (mem_int "id" j, mem_int "parent" j, mem_str "name" j),
      (mem_int "domain" j, mem_int "depth" j),
      (mem_float "start_s" j, mem_float "dur_s" j),
      (mem_int "adds" j, mem_int "muls" j, mem_int "invs" j),
      attrs_of_json (Json.member "attrs" j) )
  with
  | ( (Some id, Some parent, Some name),
      (Some domain, Some depth),
      (Some start_s, Some dur_s),
      (Some d_adds, Some d_muls, Some d_invs),
      Some attrs ) ->
    Some
      {
        Span.id;
        parent;
        name;
        attrs;
        domain;
        depth;
        start_s;
        dur_s;
        d_adds;
        d_muls;
        d_invs;
      }
  | _ -> None

let event_of_json j =
  match
    ( mem_int "seq" j,
      mem_float "ts" j,
      mem_str "level" j,
      mem_str "name" j,
      attrs_of_json (Json.member "attrs" j) )
  with
  | Some seq, Some ts, Some level, Some name, Some attrs -> (
    match Event.level_of_string level with
    | Some level ->
      let mono = Option.value ~default:ts (mem_float "mono" j) in
      Some { Event.seq; ts; mono; level; name; attrs }
    | None -> None)
  | _ -> None

let sample_of_json kind j =
  match attrs_of_json (Json.member "labels" j) with
  | None -> None
  | Some labels -> (
    match kind with
    | Metric.K_counter -> (
      match mem_int "value" j with
      | Some c when c >= 0 -> Some { Metric.labels; value = Metric.V_counter c }
      | _ -> None)
    | Metric.K_gauge -> (
      match mem_float "value" j with
      | Some g -> Some { Metric.labels; value = Metric.V_gauge g }
      | None -> None)
    | Metric.K_histogram -> (
      match
        ( Json.member "buckets" j,
          Json.member "counts" j,
          mem_float "sum" j,
          mem_int "count" j )
      with
      (* counts carries the +Inf overflow bucket last: |counts| = |bounds|+1 *)
      | Some (Json.List bs), Some (Json.List cs), Some s_sum, Some s_count
        when List.length cs = List.length bs + 1 && s_count >= 0 -> (
        match (opt_all Json.to_float_opt bs, opt_all Json.to_int_opt cs) with
        | Some bounds, Some counts when List.for_all (fun c -> c >= 0) counts ->
          Some
            {
              Metric.labels;
              value =
                Metric.V_histogram
                  {
                    Metric.s_bounds = Array.of_list bounds;
                    s_counts = Array.of_list counts;
                    s_sum;
                    s_count;
                  };
            }
        | _ -> None)
      | _ -> None))

let view_of_json j =
  match (mem_str "name" j, mem_str "kind" j, Json.member "samples" j) with
  | Some name, Some kind_s, Some (Json.List samples) -> (
    let kind =
      match kind_s with
      | "counter" -> Some Metric.K_counter
      | "gauge" -> Some Metric.K_gauge
      | "histogram" -> Some Metric.K_histogram
      | _ -> None
    in
    match kind with
    | None -> None
    | Some kind -> (
      match opt_all (sample_of_json kind) samples with
      | Some samples ->
        Some
          {
            Metric.name;
            help = Option.value ~default:"" (mem_str "help" j);
            kind;
            samples;
          }
      | None -> None))
  | _ -> None

let decode_bundle payload =
  match Json.parse payload with
  | exception Json.Parse_error _ -> None
  | j -> (
    match
      ( mem_str "schema" j,
        mem_int "node" j,
        mem_int "pid" j,
        mem_int "hlc" j,
        Json.member "metrics" j,
        Json.member "spans" j,
        Json.member "events" j,
        Json.member "flight" j )
    with
    | ( Some s,
        Some b_node,
        Some b_pid,
        Some b_hlc,
        Some (Json.List metrics),
        Some (Json.List spans),
        Some (Json.List events),
        Some flight )
      when s = schema && b_node >= 0 && b_hlc >= 0 -> (
      match
        ( opt_all view_of_json metrics,
          opt_all span_of_json spans,
          opt_all event_of_json events,
          Json.member "entries" flight )
      with
      | Some b_views, Some b_spans, Some b_events, Some (Json.List entries) -> (
        match opt_all Flight.decode_entry_json entries with
        | Some b_flight ->
          (* "registry" is absent in pre-/2 bundles; those all came from
             shared-registry (loopback) processes, so Process is both
             the backward-compatible and the safe default *)
          let b_scope =
            Option.value ~default:Process
              (Option.bind (mem_str "registry" j) scope_of_name)
          in
          Some
            {
              b_node;
              b_pid;
              b_scope;
              b_hlc;
              b_views;
              b_spans;
              b_events;
              b_flight;
              b_flight_recorded =
                Option.value ~default:(List.length b_flight)
                  (mem_int "recorded" flight);
            }
        | None -> None)
      | _ -> None)
    | _ -> None)

(* ----- streaming deltas (csm-node-telemetry/2) ----- *)

type delta = {
  d_node : int;
  d_pid : int;
  d_scope : scope;
  d_seq : int;  (* per-source emission number, from 1 *)
  d_full : bool;  (* full registry snapshot vs changed-families-only *)
  d_hlc : Clock.stamp;
  d_views : Metric.view list;  (* CUMULATIVE values for the families carried *)
  d_events : Event.t list;  (* the event tail new since the last emission *)
  d_events_total : int;
  d_events_dropped : int;
}

let delta_json ~node ~scope ~seq ~full ~views ~events () =
  Json.Obj
    [
      ("schema", Json.Str schema_v2);
      ("node", Json.Int node);
      ("pid", Json.Int (Unix.getpid ()));
      ("registry", Json.Str (scope_name scope));
      ("seq", Json.Int seq);
      ("full", Json.Bool full);
      ("hlc", Json.Int (Clock.peek ()));
      ("events_total", Json.Int (Event.total ()));
      ("events_dropped", Json.Int (Event.dropped ()));
      ("metrics", Json.List (List.map view_json views));
      ("events", Json.List (List.map event_json events));
    ]

let delta_payload ~node ~scope ~seq ~full ~views ~events () =
  Json.to_string (delta_json ~node ~scope ~seq ~full ~views ~events ())

let decode_delta payload =
  match Json.parse payload with
  | exception Json.Parse_error _ -> None
  | j -> (
    match
      ( (mem_str "schema" j, mem_int "node" j, mem_int "pid" j),
        (Option.bind (mem_str "registry" j) scope_of_name, mem_int "seq" j),
        (mem_int "hlc" j, Json.member "metrics" j, Json.member "events" j) )
    with
    | ( (Some s, Some d_node, Some d_pid),
        (Some d_scope, Some d_seq),
        (Some d_hlc, Some (Json.List metrics), Some (Json.List events)) )
      when s = schema_v2 && d_node >= 0 && d_seq >= 1 && d_hlc >= 0 -> (
      match (opt_all view_of_json metrics, opt_all event_of_json events) with
      | Some d_views, Some d_events ->
        let d_events_total =
          max 0 (Option.value ~default:0 (mem_int "events_total" j))
        in
        let d_events_dropped =
          max 0 (Option.value ~default:0 (mem_int "events_dropped" j))
        in
        Some
          {
            d_node;
            d_pid;
            d_scope;
            d_seq;
            d_full =
              Option.value ~default:false
                (Option.bind (Json.member "full" j) Json.to_bool_opt);
            d_hlc;
            d_views;
            d_events;
            d_events_total;
            d_events_dropped;
          }
      | _ -> None)
    | _ -> None)

(* ----- merging ----- *)

(* One representative bundle per registry — keyed by (pid, node index)
   so colliding pids across hosts cannot silently swallow a node's
   telemetry.  Scope [Process] bundles (loopback: one shared registry
   per process) collapse the node component, keeping the bundle with
   the latest HLC snapshot, i.e. the most complete view of that shared
   state; scope [Node] bundles each stand for their own registry. *)
let dedup_key b =
  match b.b_scope with
  | Process -> (b.b_pid, -1)
  | Node -> (b.b_pid, b.b_node)

let dedup bundles =
  let best : (int * int, bundle) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun b ->
      let key = dedup_key b in
      match Hashtbl.find_opt best key with
      | Some prev when Clock.compare prev.b_hlc b.b_hlc >= 0 -> ()
      | _ -> Hashtbl.replace best key b)
    bundles;
  let reps = Hashtbl.fold (fun _ b acc -> b :: acc) best [] in
  List.sort (fun a b -> Int.compare a.b_node b.b_node) reps

let merge_samples kind (a : Metric.sample) (b : Metric.sample) =
  let value =
    match (a.Metric.value, b.Metric.value) with
    | Metric.V_counter x, Metric.V_counter y -> Metric.V_counter (x + y)
    | Metric.V_gauge x, Metric.V_gauge y -> Metric.V_gauge (Float.max x y)
    | Metric.V_histogram x, Metric.V_histogram y -> (
      match Metric.merge x y with
      | m -> Metric.V_histogram m
      | exception Invalid_argument _ ->
        (* bucket-layout mismatch from an untrusted bundle: keep ours *)
        Metric.V_histogram x)
    | v, _ -> v  (* kind mismatch inside one family: keep the first *)
  in
  ignore kind;
  { a with Metric.value }

let merge_views (lists : Metric.view list list) : Metric.view list =
  let families : (string, Metric.view) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (List.iter (fun (v : Metric.view) ->
         match Hashtbl.find_opt families v.Metric.name with
         | None ->
           Hashtbl.replace families v.Metric.name v;
           order := v.Metric.name :: !order
         | Some prev when prev.Metric.kind = v.Metric.kind ->
           (* fold v's samples into prev's, matching on labels *)
           let samples =
             List.fold_left
               (fun acc (s : Metric.sample) ->
                 let rec fold = function
                   | [] -> acc @ [ s ]
                   | (p : Metric.sample) :: _ when p.Metric.labels = s.Metric.labels
                     ->
                     List.map
                       (fun (q : Metric.sample) ->
                         if q.Metric.labels = s.Metric.labels then
                           merge_samples v.Metric.kind q s
                         else q)
                       acc
                   | _ :: rest -> fold rest
                 in
                 fold acc)
               prev.Metric.samples v.Metric.samples
           in
           let help =
             if prev.Metric.help <> "" then prev.Metric.help else v.Metric.help
           in
           Hashtbl.replace families v.Metric.name
             { prev with Metric.samples; help }
         | Some _ -> ()  (* kind clash across bundles: first wins *)))
    lists;
  List.sort
    (fun (a : Metric.view) b -> String.compare a.Metric.name b.Metric.name)
    (List.map
       (fun name ->
         let v = Hashtbl.find families name in
         {
           v with
           Metric.samples =
             List.sort
               (fun (a : Metric.sample) b ->
                 compare a.Metric.labels b.Metric.labels)
               v.Metric.samples;
         })
       !order)

let merged_views bundles =
  merge_views (List.map (fun b -> b.b_views) (dedup bundles))

let max_hlc bundles =
  List.fold_left (fun acc b -> Clock.join acc b.b_hlc) 0 bundles

(* ----- the merged Chrome trace ----- *)

(* Flow pairing key: within one run, a (round, frame kind, src, dst)
   triple identifies at most one protocol send, so matching flight
   entries on it links each send to its receive. *)
let flow_key ~round ~frame ~src ~dst =
  Printf.sprintf "%d/%s/%d->%d" round frame src dst

let flight_us (e : Flight.entry) =
  (* µs from the HLC: milliseconds widened, the logical counter as a
     sub-millisecond offset — so trace order IS HLC order *)
  (Clock.ms e.f_hlc * 1000) + min (Clock.count e.f_hlc) 999

let wire_tid = 999  (* the per-process "wire" track for flight slices *)

let cluster_trace (bundles : bundle list) : Json.t =
  let reps = dedup bundles in
  (* one shared time base across spans and flight entries, so rebased
     microsecond integers stay small and exact *)
  let base_us =
    List.fold_left
      (fun acc b ->
        let acc =
          List.fold_left
            (fun acc (r : Span.record) ->
              min acc (int_of_float (r.Span.start_s *. 1e6)))
            acc b.b_spans
        in
        List.fold_left
          (fun acc e -> min acc (flight_us e))
          acc b.b_flight)
      max_int bundles
  in
  let base_us = if base_us = max_int then 0 else base_us in
  let events = ref [] in
  let emit e = events := e :: !events in
  (* process-name metadata, one per node *)
  List.iter
    (fun b ->
      emit
        (Json.Obj
           [
             ("name", Json.Str "process_name");
             ("ph", Json.Str "M");
             ("pid", Json.Int b.b_node);
             ( "args",
               Json.Obj
                 [ ("name", Json.Str (Printf.sprintf "node %d" b.b_node)) ] );
           ]))
    (List.sort (fun a b -> Int.compare a.b_node b.b_node) bundles);
  (* spans: one X event each, under the owning process's pid *)
  List.iter
    (fun b ->
      List.iter
        (fun (r : Span.record) ->
          emit
            (Json.Obj
               [
                 ("name", Json.Str r.Span.name);
                 ("cat", Json.Str "csm");
                 ("ph", Json.Str "X");
                 ( "ts",
                   Json.Int (int_of_float (r.Span.start_s *. 1e6) - base_us) );
                 ("dur", Json.Float (r.Span.dur_s *. 1e6));
                 ("pid", Json.Int b.b_node);
                 ("tid", Json.Int r.Span.domain);
                 ( "args",
                   Json.Obj
                     (List.map (fun (k, v) -> (k, Json.Str v)) r.Span.attrs
                     @ [ ("span_id", Json.Int r.Span.id) ]) );
               ]))
        b.b_spans)
    reps;
  (* flight entries: a thin slice on the wire track of every node (all
     bundles — rings are per-instance even in loopback) *)
  let flow_ids : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let next_flow = ref 0 in
  let flow_id key =
    match Hashtbl.find_opt flow_ids key with
    | Some id -> id
    | None ->
      let id = !next_flow in
      incr next_flow;
      Hashtbl.replace flow_ids key id;
      id
  in
  let sends : (string, int * int) Hashtbl.t = Hashtbl.create 64 in
  (* key → (node, ts) of the send side, to count matched flows *)
  let matched = ref 0 in
  List.iter
    (fun b ->
      List.iter
        (fun (e : Flight.entry) ->
          let ts = flight_us e - base_us in
          let frame = Option.value ~default:"" (List.assoc_opt "frame" e.f_attrs) in
          let name =
            if frame = "" then e.Flight.f_kind
            else e.Flight.f_kind ^ ":" ^ frame
          in
          emit
            (Json.Obj
               [
                 ("name", Json.Str name);
                 ("cat", Json.Str "csm.wire");
                 ("ph", Json.Str "X");
                 ("ts", Json.Int ts);
                 ("dur", Json.Int 1);
                 ("pid", Json.Int b.b_node);
                 ("tid", Json.Int wire_tid);
                 ( "args",
                   Json.Obj
                     (("round", Json.Int e.f_round)
                     :: ("hlc", Json.Int e.f_hlc)
                     :: List.map (fun (k, v) -> (k, Json.Str v)) e.f_attrs) );
               ]);
          match e.Flight.f_kind with
          | "send" -> (
            match List.assoc_opt "dst" e.f_attrs with
            | Some dst ->
              let key = flow_key ~round:e.f_round ~frame ~src:b.b_node
                          ~dst:(int_of_string_opt dst |> Option.value ~default:(-1))
              in
              Hashtbl.replace sends key (b.b_node, ts);
              emit
                (Json.Obj
                   [
                     ("name", Json.Str frame);
                     ("cat", Json.Str "csm.flow");
                     ("ph", Json.Str "s");
                     ("id", Json.Int (flow_id key));
                     ("ts", Json.Int ts);
                     ("pid", Json.Int b.b_node);
                     ("tid", Json.Int wire_tid);
                   ])
            | None -> ())
          | "recv" -> (
            match List.assoc_opt "src" e.f_attrs with
            | Some src ->
              let key = flow_key ~round:e.f_round ~frame
                          ~src:(int_of_string_opt src |> Option.value ~default:(-1))
                          ~dst:b.b_node
              in
              emit
                (Json.Obj
                   [
                     ("name", Json.Str frame);
                     ("cat", Json.Str "csm.flow");
                     ("ph", Json.Str "f");
                     ("bp", Json.Str "e");
                     ("id", Json.Int (flow_id key));
                     ("ts", Json.Int ts);
                     ("pid", Json.Int b.b_node);
                     ("tid", Json.Int wire_tid);
                   ]);
              if Hashtbl.mem sends key then incr matched
            | None -> ())
          | _ -> ())
        b.b_flight)
    (List.sort (fun a b -> Int.compare a.b_node b.b_node) bundles);
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !events));
      ("displayTimeUnit", Json.Str "ms");
    ]

(* Matched cross-node send→recv pairs among the bundles' flight rings:
   the obs-smoke assertion that the merged trace really links
   processes.  (Send and recv live on different nodes by construction —
   a node never sends to itself.) *)
let cross_flows (bundles : bundle list) : int =
  let sends : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let count = ref 0 in
  let frame_of e =
    Option.value ~default:"" (List.assoc_opt "frame" e.Flight.f_attrs)
  in
  List.iter
    (fun b ->
      List.iter
        (fun (e : Flight.entry) ->
          if e.Flight.f_kind = "send" then
            match List.assoc_opt "dst" e.f_attrs with
            | Some dst ->
              Hashtbl.replace sends
                (flow_key ~round:e.f_round ~frame:(frame_of e) ~src:b.b_node
                   ~dst:(int_of_string_opt dst |> Option.value ~default:(-1)))
                ()
            | None -> ())
        b.b_flight)
    bundles;
  List.iter
    (fun b ->
      List.iter
        (fun (e : Flight.entry) ->
          if e.Flight.f_kind = "recv" then
            match List.assoc_opt "src" e.f_attrs with
            | Some src ->
              if
                Hashtbl.mem sends
                  (flow_key ~round:e.f_round ~frame:(frame_of e)
                     ~src:(int_of_string_opt src |> Option.value ~default:(-1))
                     ~dst:b.b_node)
              then incr count
            | None -> ())
        b.b_flight)
    bundles;
  !count
