(** The CSM metric families (Prometheus naming, csm_ prefix), defined
    once so every instrumentation site and the EXPERIMENTS.md table
    agree.  Constructors intern into {!Metric}; guard hot paths with
    [Metric.enabled ()]. *)

val tick_buckets : float array
(** Simulator-tick histogram buckets: 1 .. ~5·10⁵ in powers of two. *)

val messages_total : node:int -> dir:string -> layer:string -> Metric.counter
val message_bytes_total :
  node:int -> dir:string -> layer:string -> Metric.counter

val record_per_node :
  layer:string ->
  sent:int array ->
  received:int array ->
  bytes_sent:int array ->
  bytes_received:int array ->
  unit
(** Fold per-node simulator stats into the message counters; a no-op
    when metrics are disabled. *)

val round_latency : Metric.hist
val consensus_latency : protocol:string -> Metric.hist
val pbft_messages : phase:string -> Metric.counter
val rounds_total : result:string -> Metric.counter
val rs_decodes : algorithm:string -> outcome:string -> Metric.counter

val rs_fastpath : outcome:string -> Metric.counter
(** Optimistic-decode outcomes: ["hit"] (candidate verified everywhere),
    ["fallback"] (full error decode ran), ["erasure"] (suspicion-guided
    erasure decode recovered after the error decoder failed). *)

val rs_corrected_symbols : Metric.counter
val decode_errors : node:int -> Metric.counter
val node_suspicion : node:int -> Metric.gauge
val straggler_wait : early:bool -> Metric.hist
val transport_frame_errors : node:int -> Metric.counter
(** Corrupt/truncated frames detected (and dropped) at the transport
    boundary — the cluster driver's Byzantine-resilience signal. *)

val intermix_audits : result:string -> Metric.counter
val delegation_fraud : stage:string -> Metric.counter

val hlc_skew : node:int -> Metric.gauge
(** |HLC physical − wall clock| at telemetry-snapshot time, seconds. *)

val flightrec_dumps : reason:string -> Metric.counter
(** Flight-recorder dumps written, by trigger: ["divergence"],
    ["frame-errors"], ["suspicion"], ["alert"], ["requested"]. *)

val events_dropped : Metric.counter
(** Event-ring entries overwritten unread ([csm_events_dropped_total]):
    how truncated the telemetry event tails are. *)

val node_phases : phase:string -> Metric.counter
(** Node-runtime phase completions ([commands] | [committed] |
    [computed] | [decoded]) — the per-phase windowed throughput feed. *)

val commands_committed : node:int -> Metric.counter
(** Commands the node committed and executed (K per accepted round). *)

val alerts_fired : rule:string -> Metric.counter
(** SLO alert rising edges, by rule. *)

val adversary_candidates : bound:string -> schedule:string -> Metric.counter
(** Byzantine strategies evaluated by the adversary search
    ([csm_adversary_candidates_total]), by Table-2 bound and
    exploration schedule. *)

val adversary_violations : bound:string -> kind:string -> Metric.counter
(** Oracle violations the adversary search produced
    ([csm_adversary_violations_total]), by bound and kind
    (["safety"] | ["liveness"]). *)

val adversary_shrink_steps : Metric.counter
(** Accepted shrinking moves while minimizing failing strategies
    ([csm_adversary_shrink_steps_total]). *)

(** {1 OCaml runtime family} *)

val gc_minor_collections : Metric.gauge
val gc_major_collections : Metric.gauge
val gc_compactions : Metric.gauge
val gc_heap_words : Metric.gauge
val gc_top_heap_words : Metric.gauge
val gc_minor_words : Metric.gauge
val process_rss_bytes : Metric.gauge
val process_start_time_seconds : Metric.gauge

val sample_runtime : unit -> unit
(** Refresh the [csm_gc_*] / process gauges from [Gc.quick_stat] and
    [/proc/self/statm]; a no-op when metrics are disabled.  Call before
    any exposition or telemetry emission that should carry runtime
    health. *)

val throughput_lambda : Metric.gauge
val storage_gamma : Metric.gauge
val security_beta : Metric.gauge
