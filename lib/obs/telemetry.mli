(** The CSM metric families (Prometheus naming, csm_ prefix), defined
    once so every instrumentation site and the EXPERIMENTS.md table
    agree.  Constructors intern into {!Metric}; guard hot paths with
    [Metric.enabled ()]. *)

val tick_buckets : float array
(** Simulator-tick histogram buckets: 1 .. ~5·10⁵ in powers of two. *)

val messages_total : node:int -> dir:string -> layer:string -> Metric.counter
val message_bytes_total :
  node:int -> dir:string -> layer:string -> Metric.counter

val record_per_node :
  layer:string ->
  sent:int array ->
  received:int array ->
  bytes_sent:int array ->
  bytes_received:int array ->
  unit
(** Fold per-node simulator stats into the message counters; a no-op
    when metrics are disabled. *)

val round_latency : Metric.hist
val consensus_latency : protocol:string -> Metric.hist
val pbft_messages : phase:string -> Metric.counter
val rounds_total : result:string -> Metric.counter
val rs_decodes : algorithm:string -> outcome:string -> Metric.counter

val rs_fastpath : outcome:string -> Metric.counter
(** Optimistic-decode outcomes: ["hit"] (candidate verified everywhere),
    ["fallback"] (full error decode ran), ["erasure"] (suspicion-guided
    erasure decode recovered after the error decoder failed). *)

val rs_corrected_symbols : Metric.counter
val decode_errors : node:int -> Metric.counter
val node_suspicion : node:int -> Metric.gauge
val straggler_wait : early:bool -> Metric.hist
val transport_frame_errors : node:int -> Metric.counter
(** Corrupt/truncated frames detected (and dropped) at the transport
    boundary — the cluster driver's Byzantine-resilience signal. *)

val intermix_audits : result:string -> Metric.counter
val delegation_fraud : stage:string -> Metric.counter

val hlc_skew : node:int -> Metric.gauge
(** |HLC physical − wall clock| at telemetry-snapshot time, seconds. *)

val flightrec_dumps : reason:string -> Metric.counter
(** Flight-recorder dumps written, by trigger: ["divergence"],
    ["frame-errors"], ["suspicion"], ["requested"]. *)

val throughput_lambda : Metric.gauge
val storage_gamma : Metric.gauge
val security_beta : Metric.gauge
