(** Per-node flight recorder: a bounded, always-on ring of HLC-stamped
    round events (phase transitions, frame sends/receives, errors),
    dumped as part of a [csm-flightrec/1] document only when a run goes
    wrong — ledger divergence, frame errors, decoder suspicion.

    Instance-based, unlike the process-global {!Event} log: loopback
    clusters run N node runtimes in one process and each gets its own
    black box.  Thread-safe per instance. *)

type entry = {
  f_hlc : Clock.stamp;  (** HLC stamp at the moment of recording *)
  f_trace : int64;  (** causal trace id; 0 when untraced *)
  f_round : int;
  f_kind : string;  (** "phase" | "send" | "recv" | "error" *)
  f_attrs : (string * string) list;
}

type t

val default_capacity : int

val create : ?capacity:int -> node:int -> unit -> t
(** @raise Invalid_argument on a non-positive capacity. *)

val node : t -> int
val capacity : t -> int

val record :
  t ->
  ?trace:int64 ->
  ?attrs:(string * string) list ->
  hlc:Clock.stamp ->
  round:int ->
  string ->
  unit
(** Append an entry, overwriting the oldest once full. *)

val recorded : t -> int
(** Entries ever recorded, including overwritten ones. *)

val entries : t -> entry list
(** Surviving entries, oldest first — which is also HLC order, since
    every local stamp strictly increases. *)

val entry_json : entry -> Json.t

val decode_entry_json : Json.t -> entry option
(** Total inverse of {!entry_json}: malformed input yields [None]. *)

val to_json : t -> Json.t
(** The node's section of a flight-recorder dump: node id, capacity,
    total recorded count and surviving entries. *)
