(* Per-node flight recorder: a bounded ring of HLC-stamped round
   events — phase transitions, frame sends/receives, errors — always
   on, cheap enough to leave running, and dumped only when something
   goes wrong (ledger divergence, frame errors, decoder suspicion).

   Unlike the process-global [Event] log, a recorder is an instance:
   loopback clusters run N node runtimes in one process, and each needs
   its own ring or the black boxes would interleave.  The ring keeps
   the newest [capacity] entries; [recorded] counts everything ever
   recorded so a dump states how much history was lost. *)

type entry = {
  f_hlc : Clock.stamp;  (* HLC at the moment of recording *)
  f_trace : int64;  (* causal trace id (0 = none) *)
  f_round : int;
  f_kind : string;  (* "phase" | "send" | "recv" | "error" *)
  f_attrs : (string * string) list;
}

type t = {
  node : int;
  cap : int;
  ring : entry option array;
  lock : Mutex.t;
  mutable next : int;  (* guarded by lock *)
}

let default_capacity = 512

let create ?(capacity = default_capacity) ~node () =
  if capacity <= 0 then invalid_arg "Flight.create: capacity"
  else
    {
      node;
      cap = capacity;
      ring = Array.make capacity None;
      lock = Mutex.create ();
      next = 0;
    }

let node t = t.node
let capacity t = t.cap

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let record t ?(trace = 0L) ?(attrs = []) ~hlc ~round kind =
  let e = { f_hlc = hlc; f_trace = trace; f_round = round; f_kind = kind; f_attrs = attrs } in
  locked t (fun () ->
      t.ring.(t.next mod t.cap) <- Some e;
      t.next <- t.next + 1)

let recorded t = locked t (fun () -> t.next)

(* Surviving entries, oldest first (recording order = HLC order within
   one node, since every stamp strictly increases). *)
let entries t =
  locked t (fun () ->
      let n = t.next in
      let lo = max 0 (n - t.cap) in
      List.filter_map
        (fun i -> t.ring.(i mod t.cap))
        (List.init (n - lo) (fun j -> lo + j)))

let entry_json (e : entry) =
  Json.Obj
    ([
       ("hlc", Json.Int e.f_hlc);
       ("trace", Json.Str (Printf.sprintf "%Lx" e.f_trace));
       ("round", Json.Int e.f_round);
       ("kind", Json.Str e.f_kind);
     ]
    @
    match e.f_attrs with
    | [] -> []
    | attrs ->
      [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) attrs)) ])

(* Total: a malformed object yields None, so an untrusted telemetry
   payload cannot crash the aggregator. *)
let decode_entry_json j =
  match
    ( Option.bind (Json.member "hlc" j) Json.to_int_opt,
      Option.bind (Json.member "round" j) Json.to_int_opt,
      Option.bind (Json.member "kind" j) Json.to_string_opt )
  with
  | Some hlc, Some round, Some kind when hlc >= 0 && round >= 0 ->
    let trace =
      match Option.bind (Json.member "trace" j) Json.to_string_opt with
      | Some s -> ( try Int64.of_string ("0x" ^ s) with Failure _ -> 0L)
      | None -> 0L
    in
    let attrs =
      match Json.member "attrs" j with
      | Some (Json.Obj kvs) ->
        List.filter_map
          (fun (k, v) ->
            match Json.to_string_opt v with
            | Some s -> Some (k, s)
            | None -> None)
          kvs
      | _ -> []
    in
    Some { f_hlc = hlc; f_trace = trace; f_round = round; f_kind = kind; f_attrs = attrs }
  | _ -> None

let to_json t =
  Json.Obj
    [
      ("node", Json.Int t.node);
      ("capacity", Json.Int t.cap);
      ("recorded", Json.Int (recorded t));
      ("entries", Json.List (List.map entry_json (entries t)));
    ]
