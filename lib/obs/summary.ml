(* Per-span-name aggregation: count, total time, p50/p95/max latency,
   and summed operation deltas.  Used by the run-report exporter and the
   harness CSV writer. *)

type stat = {
  s_name : string;
  count : int;
  total_s : float;
  p50_s : float;
  p95_s : float;
  max_s : float;
  adds : int;
  muls : int;
  invs : int;
}

(* Nearest-rank percentile on a sorted array; q in [0, 1]. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let by_name (records : Span.record list) : stat list =
  let tbl : (string, Span.record list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : Span.record) ->
      match Hashtbl.find_opt tbl r.Span.name with
      | Some l -> l := r :: !l
      | None -> Hashtbl.add tbl r.Span.name (ref [ r ]))
    records;
  Hashtbl.fold
    (fun name rs acc ->
      let rs = !rs in
      let durs =
        Array.of_list (List.map (fun (r : Span.record) -> r.Span.dur_s) rs)
      in
      Array.sort Float.compare durs;
      let sum f = List.fold_left (fun a r -> a + f r) 0 rs in
      {
        s_name = name;
        count = List.length rs;
        total_s = Array.fold_left ( +. ) 0.0 durs;
        p50_s = percentile durs 0.50;
        p95_s = percentile durs 0.95;
        max_s = percentile durs 1.0;
        adds = sum (fun (r : Span.record) -> r.Span.d_adds);
        muls = sum (fun (r : Span.record) -> r.Span.d_muls);
        invs = sum (fun (r : Span.record) -> r.Span.d_invs);
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> String.compare a.s_name b.s_name)

let pp_stat ppf s =
  Format.fprintf ppf
    "%-26s n=%-6d total=%8.3fms p50=%8.3fms p95=%8.3fms max=%8.3fms ops=%d"
    s.s_name s.count (s.total_s *. 1e3) (s.p50_s *. 1e3) (s.p95_s *. 1e3)
    (s.max_s *. 1e3)
    (s.adds + s.muls + s.invs)
