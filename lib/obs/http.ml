(* Minimal single-threaded HTTP/1.1 responder for the live scrape
   endpoint.  Scope is deliberately tiny: GET, one connection at a
   time, bounded request reads, Content-Length + Connection: close
   responses — a Prometheus scraper or curl needs nothing more, and a
   full server dependency is exactly what this repo avoids.

   Total on untrusted input: a malformed request line is a 400, an
   unknown path a 404, a non-GET method a 405; socket errors close the
   connection and the loop continues.  The accept loop polls with a
   select timeout so [stop] is honoured within ~a quarter second. *)

type response = { status : int; content_type : string; body : string }

let text ?(status = 200) ?(content_type = "text/plain; version=0.0.4") body =
  { status; content_type; body }

type t = {
  sock : Unix.file_descr;
  bound_port : int;
  stopping : bool Atomic.t;
  mutable thread : Thread.t option;  (* None once joined *)
}

let status_line = function
  | 200 -> "200 OK"
  | 400 -> "400 Bad Request"
  | 404 -> "404 Not Found"
  | 405 -> "405 Method Not Allowed"
  | c -> string_of_int c ^ " Status"

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write fd b !off (n - !off) in
    if w <= 0 then off := n else off := !off + w
  done

let respond fd (r : response) =
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
        close\r\n\r\n%s"
       (status_line r.status) r.content_type
       (String.length r.body)
       r.body)

(* Read until the header terminator or a size/EOF bound; return the
   request head.  8 KiB is far beyond any scrape request. *)
let read_head fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 8192 then None
    else
      let sub = Buffer.contents buf in
      let has_terminator =
        let rec scan i =
          i >= 0
          && (String.sub sub i 4 = "\r\n\r\n" || scan (i - 1))
        in
        String.length sub >= 4 && scan (String.length sub - 4)
      in
      if has_terminator then Some sub
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        | exception Unix.Unix_error _ -> None
  in
  go ()

(* "GET /path HTTP/1.1" → `Get path; anything else shaped like a
   request line → `Other; garbage → `Bad. *)
let parse_request head =
  match String.index_opt head '\n' with
  | None -> `Bad
  | Some eol -> (
    let line = String.trim (String.sub head 0 eol) in
    match String.split_on_char ' ' line with
    | [ meth; path; version ]
      when path <> "" && path.[0] = '/'
           && String.length version >= 5
           && String.sub version 0 5 = "HTTP/" ->
      if meth = "GET" then `Get path else `Other
    | _ -> `Bad)

let serve_connection handler fd =
  (match read_head fd with
  | None -> respond fd (text ~status:400 "bad request\n")
  | Some head -> (
    match parse_request head with
    | `Bad -> respond fd (text ~status:400 "bad request\n")
    | `Other -> respond fd (text ~status:405 "method not allowed\n")
    | `Get path -> (
      match handler path with
      | Some r -> respond fd r
      | None -> respond fd (text ~status:404 "not found\n"))));
  Unix.close fd

let accept_loop t handler =
  while not (Atomic.get t.stopping) do
    match Unix.select [ t.sock ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept t.sock with
      | fd, _ -> (
        try serve_connection handler fd
        with Unix.Unix_error _ -> ( try Unix.close fd with Unix.Unix_error _ -> ()))
      | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let serve ?(port = 0) handler =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t = { sock; bound_port; stopping = Atomic.make false; thread = None } in
  t.thread <- Some (Thread.create (fun () -> accept_loop t handler) ());
  t

let port t = t.bound_port

let stop t =
  Atomic.set t.stopping true;
  (match t.thread with
  | Some th ->
    t.thread <- None;
    Thread.join th;
    (try Unix.close t.sock with Unix.Unix_error _ -> ())
  | None -> ())

(* ----- the tiny client ----- *)

let get ?(host = "127.0.0.1") ~port path =
  match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
  | [] -> None
  | ai :: _ -> (
    let fd = Unix.socket ai.Unix.ai_family ai.Unix.ai_socktype 0 in
    let finish v =
      (try Unix.close fd with Unix.Unix_error _ -> ());
      v
    in
    try
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
      Unix.connect fd ai.Unix.ai_addr;
      write_all fd
        (Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n"
           path host);
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        if Buffer.length buf > 8 * 1024 * 1024 then ()
        else
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
      in
      drain ();
      let doc = Buffer.contents buf in
      (* "HTTP/1.1 NNN ...\r\n...\r\n\r\nbody" *)
      let status =
        match String.split_on_char ' ' doc with
        | _ :: code :: _ -> int_of_string_opt (String.trim code)
        | _ -> None
      in
      let body =
        let rec find i =
          if i + 4 > String.length doc then None
          else if String.sub doc i 4 = "\r\n\r\n" then Some (i + 4)
          else find (i + 1)
        in
        Option.map
          (fun i -> String.sub doc i (String.length doc - i))
          (find 0)
      in
      match (status, body) with
      | Some s, Some b -> finish (Some (s, b))
      | _ -> finish None
    with Unix.Unix_error _ | Failure _ -> finish None)
