(* Structured, leveled event log with a fixed-capacity ring buffer.

   Protocol-health events (decode failures, consensus skips, suspicion
   flips, fraud alerts) are emitted here so a run can be inspected
   without replaying a full span trace.  Gated by [CSM_EVENTS]
   (debug|info|warn|error); disabled, [emit] is one atomic load and
   allocates nothing.  The ring keeps the newest [capacity] events —
   old entries are overwritten, never blocking the emitting domain for
   longer than the buffer mutex. *)

type level = Debug | Info | Warn | Error

let level_value = function Debug -> 1 | Info -> 2 | Warn -> 3 | Error -> 4

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" | "1" | "on" | "true" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type t = {
  seq : int;  (* process-unique, monotone *)
  ts : float;  (* wall clock, Unix.gettimeofday *)
  mono : float;  (* never-decreasing clock (Clock.mono), for deltas *)
  level : level;
  name : string;
  attrs : (string * string) list;
}

let capacity = 1024

(* 0 = disabled; otherwise the minimum level_value recorded. *)
let threshold = Atomic.make 0

let set_level = function
  | None -> Atomic.set threshold 0
  | Some l -> Atomic.set threshold (level_value l)

let current_level () =
  match Atomic.get threshold with
  | 1 -> Some Debug
  | 2 -> Some Info
  | 3 -> Some Warn
  | 4 -> Some Error
  | _ -> None

let enabled l = Atomic.get threshold <> 0 && level_value l >= Atomic.get threshold

let ring : t option array = Array.make capacity None
let ring_lock = Mutex.create ()
let next_seq = ref 0  (* guarded by ring_lock *)
let emitted = Atomic.make 0
let overwritten = Atomic.make 0

let locked f =
  Mutex.lock ring_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock ring_lock) f

let emit ?(attrs = []) level name =
  let th = Atomic.get threshold in
  if th <> 0 && level_value level >= th then begin
    let ts = Unix.gettimeofday () in
    let mono = Clock.mono () in
    let dropped_one =
      locked (fun () ->
          let seq = !next_seq in
          next_seq := seq + 1;
          let slot = seq mod capacity in
          let displaced = ring.(slot) <> None in
          ring.(slot) <- Some { seq; ts; mono; level; name; attrs };
          displaced)
    in
    Atomic.incr emitted;
    if dropped_one then begin
      (* the ring reclaimed an entry nobody read: make the truncation
         observable instead of silent (metric update outside the ring
         lock — the registry has its own) *)
      Atomic.incr overwritten;
      if Metric.enabled () then Metric.inc Telemetry.events_dropped
    end
  end

let total () = Atomic.get emitted
let dropped () = Atomic.get overwritten

(* Oldest-first chronological view of the surviving events. *)
let recent () =
  let items =
    locked (fun () -> Array.to_list ring |> List.filter_map (fun x -> x))
  in
  List.sort (fun a b -> Int.compare a.seq b.seq) items

(* Surviving events with a sequence number past [after], oldest first —
   the streaming-telemetry event tail. *)
let since after =
  List.filter (fun e -> e.seq > after) (recent ())

let reset () =
  locked (fun () ->
      Array.fill ring 0 capacity None;
      next_seq := 0);
  Atomic.set emitted 0;
  Atomic.set overwritten 0

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    match Sys.getenv_opt "CSM_EVENTS" with
    | None -> ()
    | Some v -> set_level (level_of_string v)
  end

let pp ppf e =
  Format.fprintf ppf "[%s] %s%s" (level_name e.level) e.name
    (match e.attrs with
    | [] -> ""
    | attrs ->
      " "
      ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs))
