(* Domain-safe metrics registry: counters, gauges, and fixed-bucket
   log-scale histograms, exposed through a process-global registry that
   the Prometheus writer ([Prom]) and the run-report exporter render.

   Hot-path design mirrors [Span]: recording is globally gated by one
   atomic flag, so with metrics off every instrumented site costs one
   atomic load and allocates nothing.  Enabled:

   - counters are single atomics (fetch-and-add, exact under any
     domain interleaving);
   - gauges are atomics over floats (last-writer-wins set, CAS add);
   - histograms write to lock-free per-domain shards — a domain's first
     observation registers its shard under the histogram's mutex, after
     which observations touch only domain-local state.  Reading merges
     the shards; the merge is associative and commutative (bucket
     counts and totals are sums), so snapshots are schedule-independent
     for any domain count.

   Identity: a metric is (name, sorted label pairs).  Re-registering
   the same identity returns the same instance, so instrumentation
   sites can look handles up on the fly without coordination. *)

type labels = (string * string) list

let on = Atomic.make false
let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

(* Run [f] with [m] held; exception-safe (R3). *)
let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ----- histograms ----- *)

(* [bounds] are strictly increasing bucket upper bounds; an observation
   lands in the first bucket with [v <= bounds.(i)], or the implicit
   +Inf overflow bucket (index [Array.length bounds]). *)
type shard = {
  counts : int array;  (* length = Array.length bounds + 1 *)
  mutable sum : float;
  mutable cnt : int;
}

type hist = {
  bounds : float array;
  mutable shards : shard list;
  h_lock : Mutex.t;
  shard_key : shard Domain.DLS.key;
}

type snapshot = {
  s_bounds : float array;
  s_counts : int array;  (* per-bucket, overflow last *)
  s_sum : float;
  s_count : int;
}

let log_buckets ?(lo = 1e-6) ?(factor = 4.0) ?(count = 16) () =
  if lo <= 0.0 || factor <= 1.0 || count < 1 then
    invalid_arg "Metric.log_buckets";
  Array.init count (fun i -> lo *. (factor ** float_of_int i))

(* default: 1µs .. ~1000s in quarter-decade steps, for latencies *)
let default_buckets = log_buckets ~lo:1e-6 ~factor:4.0 ~count:16 ()

let make_hist bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Metric.histogram: no buckets";
  for i = 1 to n - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metric.histogram: buckets not increasing"
  done;
  let rec h =
    lazy
      {
        bounds = Array.copy bounds;
        shards = [];
        h_lock = Mutex.create ();
        shard_key =
          Domain.DLS.new_key (fun () ->
              let s = { counts = Array.make (n + 1) 0; sum = 0.0; cnt = 0 } in
              let h = Lazy.force h in
              locked h.h_lock (fun () -> h.shards <- s :: h.shards);
              s);
      }
  in
  Lazy.force h

let bucket_index bounds v =
  (* binary search: first i with v <= bounds.(i); n = overflow *)
  let n = Array.length bounds in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v <= bounds.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let observe_hist h v =
  let s = Domain.DLS.get h.shard_key in
  let i = bucket_index h.bounds v in
  s.counts.(i) <- s.counts.(i) + 1;
  s.sum <- s.sum +. v;
  s.cnt <- s.cnt + 1

let empty_snapshot bounds =
  {
    s_bounds = Array.copy bounds;
    s_counts = Array.make (Array.length bounds + 1) 0;
    s_sum = 0.0;
    s_count = 0;
  }

let merge a b =
  if a.s_bounds <> b.s_bounds then invalid_arg "Metric.merge: bucket mismatch";
  {
    s_bounds = a.s_bounds;
    s_counts = Array.map2 ( + ) a.s_counts b.s_counts;
    s_sum = a.s_sum +. b.s_sum;
    s_count = a.s_count + b.s_count;
  }

let snapshot_hist h =
  let shards = locked h.h_lock (fun () -> h.shards) in
  List.fold_left
    (fun acc s ->
      merge acc
        {
          s_bounds = h.bounds;
          s_counts = Array.copy s.counts;
          s_sum = s.sum;
          s_count = s.cnt;
        })
    (empty_snapshot h.bounds) shards

(* Nearest-rank quantile estimate: the upper bound of the bucket holding
   rank ⌈q·count⌉ (the overflow bucket reports the largest finite
   bound).  0 on an empty histogram, matching [Summary.percentile]. *)
let quantile s q =
  if s.s_count = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int s.s_count))) in
    let n = Array.length s.s_bounds in
    let rec go i acc =
      if i > n then s.s_bounds.(n - 1)
      else
        let acc = acc + s.s_counts.(i) in
        if acc >= rank then s.s_bounds.(min i (n - 1)) else go (i + 1) acc
    in
    go 0 0
  end

(* ----- registry ----- *)

type instrument =
  | Counter of int Atomic.t
  | Gauge of float Atomic.t
  | Histogram of hist

type kind = K_counter | K_gauge | K_histogram

type family = {
  fam_name : string;
  fam_help : string;
  fam_kind : kind;
  mutable fam_instances : (labels * instrument) list;
}

let registry : (string, family) Hashtbl.t = Hashtbl.create 64
let reg_lock = Mutex.create ()

let valid_name s =
  s <> ""
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       s
  && (match s.[0] with '0' .. '9' -> false | _ -> true)

let canon labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

(* Find or create the instrument for (name, labels); the constructor
   runs under the registry lock only on first registration. *)
let intern ~name ~help ~kind ~labels make =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metric: invalid metric name %S" name);
  List.iter
    (fun (k, _) ->
      if not (valid_name k) then
        invalid_arg (Printf.sprintf "Metric: invalid label name %S" k))
    labels;
  let labels = canon labels in
  locked reg_lock (fun () ->
      let fam =
        match Hashtbl.find_opt registry name with
        | Some f ->
          if f.fam_kind <> kind then
            invalid_arg
              (Printf.sprintf "Metric: %s re-registered as a different kind" name);
          f
        | None ->
          let f =
            { fam_name = name; fam_help = help; fam_kind = kind; fam_instances = [] }
          in
          Hashtbl.add registry name f;
          f
      in
      match List.assoc_opt labels fam.fam_instances with
      | Some i -> i
      | None ->
        let i = make () in
        fam.fam_instances <- (labels, i) :: fam.fam_instances;
        i)

type counter = int Atomic.t
type gauge = float Atomic.t

let counter ?(help = "") ?(labels = []) name : counter =
  match intern ~name ~help ~kind:K_counter ~labels (fun () -> Counter (Atomic.make 0)) with
  | Counter c -> c
  | Gauge _ | Histogram _ -> assert false

let gauge ?(help = "") ?(labels = []) name : gauge =
  match intern ~name ~help ~kind:K_gauge ~labels (fun () -> Gauge (Atomic.make 0.0)) with
  | Gauge g -> g
  | Counter _ | Histogram _ -> assert false

let histogram ?(help = "") ?(labels = []) ?(buckets = default_buckets) name :
    hist =
  match
    intern ~name ~help ~kind:K_histogram ~labels (fun () ->
        Histogram (make_hist buckets))
  with
  | Histogram h -> h
  | Counter _ | Gauge _ -> assert false

let inc ?(by = 1) (c : counter) =
  if Atomic.get on then ignore (Atomic.fetch_and_add c by)

let counter_value (c : counter) = Atomic.get c

let set (g : gauge) v = if Atomic.get on then Atomic.set g v

let add (g : gauge) v =
  if Atomic.get on then begin
    let rec cas () =
      let cur = Atomic.get g in
      if not (Atomic.compare_and_set g cur (cur +. v)) then cas ()
    in
    cas ()
  end

let gauge_value (g : gauge) = Atomic.get g

let observe h v = if Atomic.get on then observe_hist h v

(* Time [f] into histogram [h] (seconds); just [f ()] when disabled. *)
let time h f =
  if Atomic.get on then begin
    let t0 = Unix.gettimeofday () in
    let r = f () in
    observe_hist h (Unix.gettimeofday () -. t0);
    r
  end
  else f ()

let snapshot = snapshot_hist

(* ----- read-side views for exposition ----- *)

type value =
  | V_counter of int
  | V_gauge of float
  | V_histogram of snapshot

type sample = { labels : labels; value : value }

type view = {
  name : string;
  help : string;
  kind : kind;
  samples : sample list;  (* sorted by labels *)
}

let read_instrument = function
  | Counter c -> V_counter (Atomic.get c)
  | Gauge g -> V_gauge (Atomic.get g)
  | Histogram h -> V_histogram (snapshot_hist h)

let compare_labels =
  List.compare (fun (a, av) (b, bv) ->
      match String.compare a b with 0 -> String.compare av bv | c -> c)

let families () =
  let fams =
    locked reg_lock (fun () ->
        Hashtbl.fold (fun _ f acc -> f :: acc) registry []
        |> List.map (fun f ->
               (f.fam_name, f.fam_help, f.fam_kind, f.fam_instances)))
  in
  List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b) fams
  |> List.map (fun (name, help, kind, instances) ->
         let samples =
           List.map
             (fun (labels, inst) -> { labels; value = read_instrument inst })
             instances
           |> List.sort (fun a b -> compare_labels a.labels b.labels)
         in
         { name; help; kind; samples })

let reset () = locked reg_lock (fun () -> Hashtbl.reset registry)
