(** Minimal dependency-free JSON emitter (strings escaped; non-finite
    floats emitted as [null] so documents always parse). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string
val write : path:string -> t -> unit
