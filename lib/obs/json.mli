(** Minimal dependency-free JSON emitter and parser.

    Strings are escaped; non-finite floats are emitted as [null] so
    documents always parse.  Finite floats use the shortest decimal
    form that round-trips to the same IEEE double ([float_repr]), so an
    emit/parse cycle is lossless. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val float_repr : float -> string
(** Shortest of [%.15g]/[%.16g]/[%.17g] that parses back to exactly the
    input. *)

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string
val write : path:string -> t -> unit

exception Parse_error of string

val parse : string -> t
(** Parse one complete JSON document; raises {!Parse_error} on
    malformed input or trailing garbage.  Numbers without a fraction or
    exponent that fit in [int] become [Int], everything else [Float]. *)

val parse_file : string -> t

(** Accessors used by the bench regression gate and tests; each returns
    [None] on a shape mismatch. *)

val member : string -> t -> t option
val to_float_opt : t -> float option
val to_int_opt : t -> int option
val to_bool_opt : t -> bool option
val to_string_opt : t -> string option
