(* Span exporters.

   Two formats:

   - Chrome trace-event JSON (the "traceEvents" object form), loadable
     in chrome://tracing or https://ui.perfetto.dev — one complete
     ("ph":"X") event per span, one tid per OCaml domain, timestamps
     rebased to the earliest span so microsecond integers stay exact;

   - a compact self-describing run-report JSON assembled by callers
     from [host], [span_summary_json] and their own config/measurement
     fields (see bin/csm_run.ml), always carrying a "schema" version so
     reports from different PRs remain comparable.

   Activation is environment-driven and free when unset: [install]
   reads CSM_TRACE once; only when present does it enable the tracer
   and register an at-exit flush. *)

let us_of s = s *. 1e6

let chrome_trace (records : Span.record list) : Json.t =
  let base =
    List.fold_left
      (fun acc (r : Span.record) -> min acc r.Span.start_s)
      infinity records
  in
  let base = if Float.is_finite base then base else 0.0 in
  let event (r : Span.record) =
    let args =
      List.map (fun (k, v) -> (k, Json.Str v)) r.Span.attrs
      @ (if r.Span.d_adds + r.Span.d_muls + r.Span.d_invs = 0 then []
         else
           [
             ("ops_adds", Json.Int r.Span.d_adds);
             ("ops_muls", Json.Int r.Span.d_muls);
             ("ops_invs", Json.Int r.Span.d_invs);
           ])
      @ [ ("span_id", Json.Int r.Span.id); ("parent", Json.Int r.Span.parent) ]
    in
    Json.Obj
      [
        ("name", Json.Str r.Span.name);
        ("cat", Json.Str "csm");
        ("ph", Json.Str "X");
        ("ts", Json.Int (int_of_float (us_of (r.Span.start_s -. base))));
        ("dur", Json.Float (us_of r.Span.dur_s));
        ("pid", Json.Int 0);
        ("tid", Json.Int r.Span.domain);
        ("args", Json.Obj args);
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event records));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write_chrome_trace ~path records = Json.write ~path (chrome_trace records)

(* Host metadata: makes artifacts from different machines / PRs
   self-describing (schema evolution is the report's "schema" field). *)
let host ?domains () =
  Json.Obj
    ([
       ("ocaml_version", Json.Str Sys.ocaml_version);
       ("word_size", Json.Int Sys.word_size);
       ("recommended_domains", Json.Int (Domain.recommended_domain_count ()));
     ]
    @ (match domains with Some d -> [ ("domains", Json.Int d) ] | None -> [])
    @
    match Sys.getenv_opt "CSM_DOMAINS" with
    | Some v -> [ ("csm_domains_env", Json.Str v) ]
    | None -> [])

let span_summary_json (stats : Summary.stat list) : Json.t =
  Json.List
    (List.map
       (fun (s : Summary.stat) ->
         Json.Obj
           [
             ("name", Json.Str s.Summary.s_name);
             ("count", Json.Int s.Summary.count);
             ("total_ms", Json.Float (s.Summary.total_s *. 1e3));
             ("p50_ms", Json.Float (s.Summary.p50_s *. 1e3));
             ("p95_ms", Json.Float (s.Summary.p95_s *. 1e3));
             ("max_ms", Json.Float (s.Summary.max_s *. 1e3));
             ("adds", Json.Int s.Summary.adds);
             ("muls", Json.Int s.Summary.muls);
             ("invs", Json.Int s.Summary.invs);
           ])
       stats)

(* Metrics registry rendered as JSON for the run report: one object per
   family; histograms carry bucket bounds, cumulative-free per-bucket
   counts, sum/count and the nearest-rank p50/p95 estimates. *)
let metrics_json () : Json.t =
  let sample_json (s : Metric.sample) =
    let labels =
      match s.Metric.labels with
      | [] -> []
      | ls ->
        [ ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) ls)) ]
    in
    let value =
      match s.Metric.value with
      | Metric.V_counter c -> [ ("value", Json.Int c) ]
      | Metric.V_gauge g -> [ ("value", Json.Float g) ]
      | Metric.V_histogram h ->
        [
          ( "buckets",
            Json.List
              (Array.to_list (Array.map (fun b -> Json.Float b) h.Metric.s_bounds))
          );
          ( "counts",
            Json.List
              (Array.to_list (Array.map (fun c -> Json.Int c) h.Metric.s_counts))
          );
          ("sum", Json.Float h.Metric.s_sum);
          ("count", Json.Int h.Metric.s_count);
          ("p50", Json.Float (Metric.quantile h 0.50));
          ("p95", Json.Float (Metric.quantile h 0.95));
        ]
    in
    Json.Obj (labels @ value)
  in
  Json.List
    (List.map
       (fun (v : Metric.view) ->
         Json.Obj
           [
             ("name", Json.Str v.Metric.name);
             ( "kind",
               Json.Str
                 (match v.Metric.kind with
                 | Metric.K_counter -> "counter"
                 | Metric.K_gauge -> "gauge"
                 | Metric.K_histogram -> "histogram") );
             ("samples", Json.List (List.map sample_json v.Metric.samples));
           ])
       (Metric.families ()))

let trace_path () = Sys.getenv_opt "CSM_TRACE"
let report_path () = Sys.getenv_opt "CSM_REPORT"

let installed = ref false

(* One entry point for every env-gated observability channel: spans
   (CSM_TRACE), events (CSM_EVENTS) and metrics (CSM_METRICS). *)
let install () =
  if not !installed then begin
    installed := true;
    Event.install ();
    Prom.install ();
    match trace_path () with
    | None -> ()
    | Some path ->
      Span.enable ();
      at_exit (fun () -> write_chrome_trace ~path (Span.records ()))
  end
