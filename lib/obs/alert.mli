(** Declarative SLO/alert rules over live metric values.

    A rule compares one metric family's sample values against a
    threshold (e.g. [csm_node_suspicion > 0]); the engine evaluates all
    rules on each telemetry merge, tracks rising/falling edges, emits
    event-log entries on transitions, remembers when each rule first
    fired, and renders the current state as a synthesized
    [csm_alerts_firing] gauge family — so Byzantine behaviour surfaces
    while the run is still going. *)

type cmp = Gt | Ge | Lt | Le

val cmp_name : cmp -> string
(** [">"], [">="], ["<"], ["<="]. *)

type rule = {
  a_name : string;  (** the [rule] label on [csm_alerts_firing] *)
  a_metric : string;  (** metric family probed (by exposition name) *)
  a_cmp : cmp;
  a_threshold : float;
  a_help : string;
}

val rule :
  ?name:string -> ?help:string -> metric:string -> cmp:cmp -> float -> rule
(** [name] defaults to [metric]. *)

val parse : string -> rule option
(** ["name:metric>thr"] (the [name:] prefix optional; operators [>],
    [>=], [<], [<=]; spaces allowed around the operator).  Total:
    malformed specs yield [None]. *)

val to_string : rule -> string
(** ["name:metric>thr"] — a [parse] fixpoint. *)

val default_rules : ?lambda_floor:float -> unit -> rule list
(** The built-in SLOs: suspicion ([csm_node_suspicion > 0]), HLC skew
    ([csm_hlc_skew_seconds > 0.5]), frame errors
    ([csm_transport_frame_errors_total > 0]), and — when
    [lambda_floor] is given — windowed throughput
    ([csm_window_lambda < floor]). *)

type engine

val create : rule list -> engine
val rules : engine -> rule list

val evaluate :
  engine -> ?now:float -> (string -> float list) -> (rule * float) list
(** Re-evaluate every rule against [values metric] (the samples of
    that family; [[]] = no data = not firing).  Rising edges emit a
    Warn event and latch the first-fired time ([now], monotonic
    seconds, defaulting to {!Clock.mono}); falling edges emit an Info
    event.  Returns the rules that just started firing, with the value
    that tripped them.  Thread-safe. *)

val firing : engine -> (rule * float) list
(** Currently-firing rules with the value that trips them. *)

val fired_ever : engine -> bool

val first_fired : engine -> string -> float option
(** Monotonic time the named rule first started firing, if ever. *)

val views : engine -> Metric.view list
(** One synthesized gauge family [csm_alerts_firing{rule="..."}]
    (1 firing / 0 not) with one sample per rule — appended to an
    exposition without touching the metric registry. *)
