(* Domain-safe span tracer.

   A span records wall-clock start/duration, the owning domain, nesting
   depth and parent within that domain, and — when the caller supplies
   an operation source — the delta of field-operation counts (adds,
   muls, invs) observed across the span.

   Hot-path design: tracing off is one atomic load and a tail call
   (nothing is allocated, so [records] stays empty and the engine's
   per-round cost is untouched).  Tracing on appends to a per-domain
   buffer — no locks are taken while the parallel pool is fanning out;
   the only synchronized step is registering a domain's buffer the first
   time that domain traces, and the merge at flush time.  Span ids come
   from one atomic counter, so (start, id) gives a deterministic total
   order for spans emitted by a single control domain. *)

type record = {
  id : int;  (* process-unique, from an atomic counter *)
  parent : int;  (* enclosing span id in the same domain; -1 = root *)
  name : string;
  attrs : (string * string) list;
  domain : int;  (* Domain.self of the emitting domain *)
  depth : int;  (* nesting depth within the emitting domain *)
  start_s : float;  (* wall-clock, Unix.gettimeofday *)
  dur_s : float;
  d_adds : int;  (* op-count deltas over the span (0 without a source) *)
  d_muls : int;
  d_invs : int;
}

type ops = unit -> int * int * int

let on = Atomic.make false
let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

let next_id = Atomic.make 0

(* Per-domain buffer: spans completed by this domain (newest first) and
   the stack of open spans ((id, depth) pairs). *)
type buf = {
  dom : int;
  mutable items : record list;
  mutable stack : (int * int) list;
}

let registry : buf list ref = ref []
let reg_lock = Mutex.create ()

(* Run [f] with the registry lock held; exception-safe (R3). *)
let locked f =
  Mutex.lock reg_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_lock) f

let key =
  Domain.DLS.new_key (fun () ->
      (* csm-lint: allow R1 — the buffer is tagged with the physical
         domain id for trace attribution, not used for scheduling. *)
      let b = { dom = (Domain.self () :> int); items = []; stack = [] } in
      locked (fun () -> registry := b :: !registry);
      b)

let with_ ?(attrs = []) ?ops ~name f =
  if not (Atomic.get on) then f ()
  else begin
    let b = Domain.DLS.get key in
    let id = Atomic.fetch_and_add next_id 1 in
    let parent, depth =
      match b.stack with [] -> (-1, 0) | (p, d) :: _ -> (p, d + 1)
    in
    b.stack <- (id, depth) :: b.stack;
    let a0, m0, i0 = match ops with Some g -> g () | None -> (0, 0, 0) in
    let start_s = Unix.gettimeofday () in
    let finish () =
      let dur_s = Unix.gettimeofday () -. start_s in
      let a1, m1, i1 = match ops with Some g -> g () | None -> (0, 0, 0) in
      (match b.stack with _ :: tl -> b.stack <- tl | [] -> ());
      b.items <-
        {
          id;
          parent;
          name;
          attrs;
          domain = b.dom;
          depth;
          start_s;
          dur_s;
          d_adds = a1 - a0;
          d_muls = m1 - m0;
          d_invs = i1 - i0;
        }
        :: b.items
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* Deterministic merge order: primary start time, ties broken by id
   (ids are monotone within a domain, so one domain's spans keep their
   emission order even at equal timestamps). *)
let order a b =
  match Float.compare a.start_s b.start_s with
  | 0 -> Int.compare a.id b.id
  | c -> c

let records () =
  let bufs = locked (fun () -> !registry) in
  List.sort order (List.concat_map (fun b -> b.items) bufs)

let reset () =
  locked (fun () ->
      List.iter
        (fun b ->
          b.items <- [];
          b.stack <- [])
        !registry)

let flush () =
  let rs = records () in
  reset ();
  rs

let total_ops r = r.d_adds + r.d_muls + r.d_invs
