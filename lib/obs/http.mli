(** Minimal single-threaded HTTP/1.1 scrape responder — just enough
    protocol for a Prometheus scraper, [curl] and the test client:
    GET only, one connection at a time, [Content-Length] +
    [Connection: close] on every response.

    The accept loop runs on its own thread and parses requests totally:
    garbage on the socket yields a 400, an unknown path a 404, a
    non-GET method a 405 — never an exception.  [stop] shuts the loop
    down and joins the thread. *)

type response = { status : int; content_type : string; body : string }

val text : ?status:int -> ?content_type:string -> string -> response
(** Defaults: 200, [text/plain; version=0.0.4] (the Prometheus
    exposition content type). *)

type t

val serve : ?port:int -> (string -> response option) -> t
(** Bind 127.0.0.1:[port] (default 0 = ephemeral) and serve [handler
    path] per GET request; [None] renders a 404.  The handler runs on
    the server thread — keep it quick and thread-safe.
    @raise Unix.Unix_error when the port cannot be bound. *)

val port : t -> int
(** The bound port (useful with [~port:0]). *)

val stop : t -> unit
(** Stop accepting, join the server thread, close the socket.
    Idempotent. *)

val get : ?host:string -> port:int -> string -> (int * string) option
(** Tiny blocking client for tests and the terminal ticker:
    [get ~port path] returns (status, body), or [None] on any
    connection/protocol error. *)
