(** Cluster telemetry aggregation: serialize a node process's
    observability state into a [csm-node-telemetry/1] bundle (the
    payload of an end-of-run [Telemetry] frame), parse bundles back
    with total decoders, and merge many of them into one cluster-wide
    metric-view list and one merged Chrome trace with cross-node flow
    arrows ordered by HLC. *)

val schema : string
(** ["csm-node-telemetry/1"]. *)

type bundle = {
  b_node : int;
  b_pid : int;
  b_hlc : Clock.stamp;  (** the node's HLC when it snapshotted *)
  b_views : Metric.view list;
  b_spans : Span.record list;
  b_events : Event.t list;
  b_flight : Flight.entry list;
  b_flight_recorded : int;  (** ring total, including overwritten *)
}

val bundle_json : node:int -> flight:Flight.t -> unit -> Json.t
(** Snapshot this process's metric registry, span buffers, event-log
    tail, HLC and the given flight ring. *)

val bundle_payload : node:int -> flight:Flight.t -> unit -> string
(** [bundle_json] rendered for a Telemetry frame payload. *)

val decode_bundle : string -> bundle option
(** Total: any malformed or wrong-schema payload yields [None], so a
    Byzantine node's telemetry is dropped, not fatal. *)

val dedup_by_pid : bundle list -> bundle list
(** One representative bundle per pid (the latest HLC snapshot), sorted
    by node id.  Loopback nodes share one process's registries; their
    bundles would otherwise multiply-count every shared channel. *)

val merge_views : Metric.view list list -> Metric.view list
(** Fold many registries' views into one: samples match on (family
    name, labels); counters sum, gauges take the max, histograms use
    [Metric.merge].  Associative and commutative inputs make the result
    independent of bundle arrival order.  Total: layout or kind clashes
    keep the first operand instead of raising. *)

val merged_views : bundle list -> Metric.view list
(** [merge_views] over the pid-deduped bundles' views. *)

val max_hlc : bundle list -> Clock.stamp
(** [Clock.join] over the bundles' snapshot stamps. *)

val cluster_trace : bundle list -> Json.t
(** The merged Chrome trace: every node's spans under its own pid
    (pid-deduped), every flight ring's entries as thin slices on a
    per-node "wire" track, and matched send/recv flight entries as
    flow-event pairs ([ph:"s"]/[ph:"f"]) whose timestamps derive from
    the HLC stamps — causally ordered across processes by
    construction. *)

val cross_flows : bundle list -> int
(** Matched cross-node send→recv pairs among the bundles' flight rings
    (the obs-smoke assertion). *)

val flow_key : round:int -> frame:string -> src:int -> dst:int -> string
(** The pairing key linking a flight "send" to its "recv": unique per
    (round, frame kind, src, dst) in this protocol. *)
