(** Cluster telemetry aggregation: serialize a node process's
    observability state into a [csm-node-telemetry/1] bundle (the
    payload of an end-of-run [Telemetry] frame), parse bundles back
    with total decoders, and merge many of them into one cluster-wide
    metric-view list and one merged Chrome trace with cross-node flow
    arrows ordered by HLC. *)

val schema : string
(** ["csm-node-telemetry/1"]. *)

val schema_v2 : string
(** ["csm-node-telemetry/2"], the streaming-delta payload. *)

type scope =
  | Process  (** shared process-wide registry (loopback threads) *)
  | Node  (** the node process owns its registry (forked modes) *)

val scope_name : scope -> string
val scope_of_name : string -> scope option

type bundle = {
  b_node : int;
  b_pid : int;
  b_scope : scope;  (** what the views describe; drives {!dedup} *)
  b_hlc : Clock.stamp;  (** the node's HLC when it snapshotted *)
  b_views : Metric.view list;
  b_spans : Span.record list;
  b_events : Event.t list;
  b_flight : Flight.entry list;
  b_flight_recorded : int;  (** ring total, including overwritten *)
}

val bundle_json : ?scope:scope -> node:int -> flight:Flight.t -> unit -> Json.t
(** Snapshot this process's metric registry, span buffers, event-log
    tail, HLC and the given flight ring.  [scope] defaults to
    [Process]. *)

val bundle_payload :
  ?scope:scope -> node:int -> flight:Flight.t -> unit -> string
(** [bundle_json] rendered for a Telemetry frame payload. *)

val decode_bundle : string -> bundle option
(** Total: any malformed or wrong-schema payload yields [None], so a
    Byzantine node's telemetry is dropped, not fatal.  Bundles without
    a ["registry"] field (pre-/2 emitters) decode as scope
    [Process]. *)

val dedup : bundle list -> bundle list
(** One representative bundle per registry, sorted by node id: scope
    [Node] bundles key on (pid, node index) — colliding pids across
    hosts cannot swallow a node's telemetry — while scope [Process]
    bundles (loopback threads sharing one registry) key on pid alone,
    keeping the latest-HLC snapshot so shared channels are not
    multiply counted. *)

(** {1 Streaming deltas (csm-node-telemetry/2)} *)

type delta = {
  d_node : int;
  d_pid : int;
  d_scope : scope;
  d_seq : int;  (** per-source emission number, from 1 *)
  d_full : bool;  (** full registry snapshot vs changed-families-only *)
  d_hlc : Clock.stamp;
  d_views : Metric.view list;
      (** CUMULATIVE values for the families carried — receivers diff
          successive values themselves, so a lost or duplicated frame
          can never corrupt an aggregate *)
  d_events : Event.t list;  (** event tail new since the last emission *)
  d_events_total : int;
  d_events_dropped : int;
}

val delta_json :
  node:int ->
  scope:scope ->
  seq:int ->
  full:bool ->
  views:Metric.view list ->
  events:Event.t list ->
  unit ->
  Json.t

val delta_payload :
  node:int ->
  scope:scope ->
  seq:int ->
  full:bool ->
  views:Metric.view list ->
  events:Event.t list ->
  unit ->
  string
(** The in-flight Telemetry frame payload: the given (cumulative)
    views and event tail under this process's pid, HLC and event
    counters. *)

val decode_delta : string -> delta option
(** Total, like {!decode_bundle}. *)

val merge_views : Metric.view list list -> Metric.view list
(** Fold many registries' views into one: samples match on (family
    name, labels); counters sum, gauges take the max, histograms use
    [Metric.merge].  Associative and commutative inputs make the result
    independent of bundle arrival order.  Total: layout or kind clashes
    keep the first operand instead of raising. *)

val merged_views : bundle list -> Metric.view list
(** [merge_views] over the pid-deduped bundles' views. *)

val max_hlc : bundle list -> Clock.stamp
(** [Clock.join] over the bundles' snapshot stamps. *)

val cluster_trace : bundle list -> Json.t
(** The merged Chrome trace: every node's spans under its own pid
    (pid-deduped), every flight ring's entries as thin slices on a
    per-node "wire" track, and matched send/recv flight entries as
    flow-event pairs ([ph:"s"]/[ph:"f"]) whose timestamps derive from
    the HLC stamps — causally ordered across processes by
    construction. *)

val cross_flows : bundle list -> int
(** Matched cross-node send→recv pairs among the bundles' flight rings
    (the obs-smoke assertion). *)

val flow_key : round:int -> frame:string -> src:int -> dst:int -> string
(** The pairing key linking a flight "send" to its "recv": unique per
    (round, frame kind, src, dst) in this protocol. *)
