(* Sliding-window estimators over rings of time-bucketed counts.

   Time is quantised into buckets of [bucket_s] seconds; bucket id
   ⌊now / bucket_s⌋ lives in ring slot (id mod nbuckets).  A slot is
   lazily reclaimed the first time a newer bucket id lands on it, so
   rotation can never double-count: a slot holds exactly one bucket's
   worth of data, and a bucket leaves the reachable set (the trailing
   [nbuckets] ids) at the same moment its slot becomes reclaimable.

   Reads fold only the slots whose id is still inside the window ending
   at [now], so stale slots that have not been overwritten yet are
   simply skipped.  [rate] divides by the real covered span — elapsed
   time since the first [mark]/[add], clamped to [span_s] — rather than
   the bucket-aligned window width, so a short run's windowed rate
   agrees with its whole-run average instead of being diluted by empty
   leading buckets. *)

let wall () = Unix.gettimeofday ()

type t = {
  bucket_s : float;
  span_s : float;
  nbuckets : int;
  ids : int array;  (* bucket id occupying each slot; -1 = empty *)
  sums : float array;
  mutable first_s : float;  (* earliest mark/add, +inf before any *)
  lock : Mutex.t;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let nbuckets_of ~bucket_s ~span_s =
  if not (bucket_s > 0.0) || not (span_s > 0.0) then
    invalid_arg "Window.create: bucket_s and span_s must be positive";
  (* +1: the window [now - span, now] straddles one extra partial bucket *)
  int_of_float (ceil (span_s /. bucket_s)) + 1

let create ?(bucket_s = 0.25) ?(span_s = 60.0) () =
  let nbuckets = nbuckets_of ~bucket_s ~span_s in
  {
    bucket_s;
    span_s;
    nbuckets;
    ids = Array.make nbuckets (-1);
    sums = Array.make nbuckets 0.0;
    first_s = infinity;
    lock = Mutex.create ();
  }

let bucket_seconds t = t.bucket_s
let span_seconds t = t.span_s

let bucket_id t now = int_of_float (floor (now /. t.bucket_s))

let mark ?now t =
  let now = match now with Some n -> n | None -> wall () in
  locked t (fun () -> if now < t.first_s then t.first_s <- now)

let add ?now t v =
  let now = match now with Some n -> n | None -> wall () in
  let id = bucket_id t now in
  let slot = ((id mod t.nbuckets) + t.nbuckets) mod t.nbuckets in
  locked t (fun () ->
      if t.ids.(slot) <> id then begin
        t.ids.(slot) <- id;
        t.sums.(slot) <- 0.0
      end;
      t.sums.(slot) <- t.sums.(slot) +. v;
      if now < t.first_s then t.first_s <- now)

(* Fold the live slots: ids within the trailing [nbuckets] window of
   [now]'s bucket.  Future ids (a slot written with a later explicit
   [?now] than this read's) are excluded too. *)
let fold_live ?now t f init =
  let now = match now with Some n -> n | None -> wall () in
  let id_now = bucket_id t now in
  let id_min = id_now - (t.nbuckets - 1) in
  locked t (fun () ->
      let acc = ref init in
      for slot = 0 to t.nbuckets - 1 do
        let id = t.ids.(slot) in
        if id >= id_min && id <= id_now then acc := f !acc id t.sums.(slot)
      done;
      !acc)

let total ?now t = fold_live ?now t (fun acc _ v -> acc +. v) 0.0

let rate ?now t =
  let now = match now with Some n -> n | None -> wall () in
  let sum = total ~now t in
  let first = locked t (fun () -> t.first_s) in
  if first = infinity then 0.0
  else
    let covered = Float.min t.span_s (now -. first) in
    sum /. Float.max t.bucket_s covered

(* ----- pure bucket lists ----- *)

type slots = (int * float) list

let snapshot ?now t =
  List.sort
    (fun (a, _) (b, _) -> Int.compare a b)
    (fold_live ?now t (fun acc id v -> (id, v) :: acc) [])

(* Pointwise sum by id on sorted association lists: canonical output
   order makes equality structural, and per-id float addition is
   commutative/associative up to rounding (the law tests use exactly
   representable values). *)
let merge a b =
  let tbl : (int, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (id, v) ->
      Hashtbl.replace tbl id
        (v +. Option.value ~default:0.0 (Hashtbl.find_opt tbl id)))
    (a @ b);
  List.sort
    (fun (x, _) (y, _) -> Int.compare x y)
    (Hashtbl.fold (fun id v acc -> (id, v) :: acc) tbl [])

let slots_total s = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 s

(* ----- windowed histograms ----- *)

type hist = {
  h_bucket_s : float;
  h_nbuckets : int;
  bounds : float array;  (* strictly increasing upper bounds *)
  h_ids : int array;
  counts : int array array;  (* per slot: |bounds|+1 with overflow last *)
  h_sums : float array;
  h_counts : int array;
  h_lock : Mutex.t;
}

let h_locked h f =
  Mutex.lock h.h_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock h.h_lock) f

let hist_create ?(bucket_s = 0.25) ?(span_s = 60.0) ?buckets () =
  let bounds =
    match buckets with Some b -> b | None -> Metric.default_buckets
  in
  if Array.length bounds = 0 then
    invalid_arg "Window.hist_create: empty bucket layout";
  Array.iteri
    (fun i b ->
      if i > 0 && not (b > bounds.(i - 1)) then
        invalid_arg "Window.hist_create: bounds must be strictly increasing")
    bounds;
  let nbuckets = nbuckets_of ~bucket_s ~span_s in
  {
    h_bucket_s = bucket_s;
    h_nbuckets = nbuckets;
    bounds = Array.copy bounds;
    h_ids = Array.make nbuckets (-1);
    counts = Array.init nbuckets (fun _ -> Array.make (Array.length bounds + 1) 0);
    h_sums = Array.make nbuckets 0.0;
    h_counts = Array.make nbuckets 0;
    h_lock = Mutex.create ();
  }

let h_bucket_id h now = int_of_float (floor (now /. h.h_bucket_s))

let h_slot_for h id =
  let slot = ((id mod h.h_nbuckets) + h.h_nbuckets) mod h.h_nbuckets in
  if h.h_ids.(slot) <> id then begin
    h.h_ids.(slot) <- id;
    Array.fill h.counts.(slot) 0 (Array.length h.counts.(slot)) 0;
    h.h_sums.(slot) <- 0.0;
    h.h_counts.(slot) <- 0
  end;
  slot

let value_bucket bounds v =
  let n = Array.length bounds in
  let rec find i = if i >= n then n else if v <= bounds.(i) then i else find (i + 1) in
  find 0

let hist_observe ?now h v =
  let now = match now with Some n -> n | None -> wall () in
  let id = h_bucket_id h now in
  h_locked h (fun () ->
      let slot = h_slot_for h id in
      let i = value_bucket h.bounds v in
      h.counts.(slot).(i) <- h.counts.(slot).(i) + 1;
      h.h_sums.(slot) <- h.h_sums.(slot) +. v;
      h.h_counts.(slot) <- h.h_counts.(slot) + 1)

let hist_add ?now h (s : Metric.snapshot) =
  if
    Array.length s.Metric.s_bounds = Array.length h.bounds
    && Array.for_all2 (fun a b -> a = b) s.Metric.s_bounds h.bounds
    && Array.length s.Metric.s_counts = Array.length h.bounds + 1
  then begin
    let now = match now with Some n -> n | None -> wall () in
    let id = h_bucket_id h now in
    h_locked h (fun () ->
        let slot = h_slot_for h id in
        Array.iteri
          (fun i c -> if c > 0 then h.counts.(slot).(i) <- h.counts.(slot).(i) + c)
          s.Metric.s_counts;
        h.h_sums.(slot) <- h.h_sums.(slot) +. s.Metric.s_sum;
        h.h_counts.(slot) <- h.h_counts.(slot) + max 0 s.Metric.s_count)
  end

let hist_snapshot ?now h =
  let now = match now with Some n -> n | None -> wall () in
  let id_now = h_bucket_id h now in
  let id_min = id_now - (h.h_nbuckets - 1) in
  h_locked h (fun () ->
      let counts = Array.make (Array.length h.bounds + 1) 0 in
      let sum = ref 0.0 and count = ref 0 in
      for slot = 0 to h.h_nbuckets - 1 do
        let id = h.h_ids.(slot) in
        if id >= id_min && id <= id_now then begin
          Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) h.counts.(slot);
          sum := !sum +. h.h_sums.(slot);
          count := !count + h.h_counts.(slot)
        end
      done;
      {
        Metric.s_bounds = Array.copy h.bounds;
        s_counts = counts;
        s_sum = !sum;
        s_count = !count;
      })
