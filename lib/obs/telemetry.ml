(* The CSM metric families, defined once so every instrumentation site
   (protocol core, consensus, RS decoder, INTERMIX, harness) agrees on
   names, labels and bucket layouts — and so the EXPERIMENTS.md table
   has a single source of truth.

   Naming: Prometheus conventions (csm_ prefix, _total for counters,
   base-unit suffixes).  Paper symbols: λ throughput, γ = K storage
   efficiency, β = b security (Section 1); node labels are the node ids
   of the simulated cluster.

   Every constructor below interns into the [Metric] registry, so
   calling it repeatedly returns the same instrument.  Hot paths should
   still guard with [Metric.enabled ()] to keep the disabled path
   allocation-free. *)

let node_label i = ("node", string_of_int i)

(* simulator-tick histograms: 1 .. ~500k ticks in powers of two *)
let tick_buckets = Metric.log_buckets ~lo:1.0 ~factor:2.0 ~count:20 ()

let messages_total ~node ~dir ~layer =
  Metric.counter ~help:"Messages sent/received per node and protocol layer"
    ~labels:[ node_label node; ("dir", dir); ("layer", layer) ]
    "csm_messages_total"

let message_bytes_total ~node ~dir ~layer =
  Metric.counter
    ~help:"Approximate wire bytes sent/received per node and protocol layer"
    ~labels:[ node_label node; ("dir", dir); ("layer", layer) ]
    "csm_message_bytes_total"

(* Fold a [Net.stats]-shaped set of per-node arrays into the message
   counters.  Byte totals are skipped when the caller had no sizer
   (all-zero arrays would only add noise). *)
let record_per_node ~layer ~sent ~received ~bytes_sent ~bytes_received =
  if Metric.enabled () then begin
    let n = Array.length sent in
    for i = 0 to n - 1 do
      if sent.(i) > 0 then
        Metric.inc ~by:sent.(i) (messages_total ~node:i ~dir:"sent" ~layer);
      if received.(i) > 0 then
        Metric.inc ~by:received.(i)
          (messages_total ~node:i ~dir:"received" ~layer);
      if bytes_sent.(i) > 0 then
        Metric.inc ~by:bytes_sent.(i)
          (message_bytes_total ~node:i ~dir:"sent" ~layer);
      if bytes_received.(i) > 0 then
        Metric.inc ~by:bytes_received.(i)
          (message_bytes_total ~node:i ~dir:"received" ~layer)
    done
  end

let round_latency =
  Metric.histogram
    ~help:"Wall-clock protocol round latency (consensus + execution), seconds"
    "csm_round_latency_seconds"

let consensus_latency ~protocol =
  Metric.histogram
    ~help:"Simulated consensus completion time, ticks"
    ~labels:[ ("protocol", protocol) ]
    ~buckets:tick_buckets "csm_consensus_latency_ticks"

let pbft_messages ~phase =
  Metric.counter ~help:"Authenticated PBFT messages accepted, by phase"
    ~labels:[ ("phase", phase) ]
    "csm_pbft_messages_total"

let rounds_total ~result =
  Metric.counter
    ~help:"Protocol rounds by outcome (executed | skipped | disagreement)"
    ~labels:[ ("result", result) ]
    "csm_rounds_total"

let rs_decodes ~algorithm ~outcome =
  Metric.counter ~help:"Reed-Solomon decode attempts, by algorithm and outcome"
    ~labels:[ ("algorithm", algorithm); ("outcome", outcome) ]
    "csm_rs_decodes_total"

let rs_fastpath ~outcome =
  Metric.counter
    ~help:
      "Optimistic Reed-Solomon decode attempts, by outcome (hit = \
       candidate verified on every received point; fallback = full Gao \
       decode ran; erasure = suspicion-guided erasure decode recovered \
       after Gao failed)"
    ~labels:[ ("outcome", outcome) ]
    "csm_rs_fastpath_total"

let rs_corrected_symbols =
  Metric.counter
    ~help:"Total erroneous symbols located and corrected by the RS decoder"
    "csm_rs_corrected_symbols_total"

let decode_errors ~node =
  Metric.counter
    ~help:"Times a node's execution result was flagged wrong by the decoder"
    ~labels:[ node_label node ]
    "csm_decode_errors_total"

let node_suspicion ~node =
  Metric.gauge
    ~help:
      "Cumulative decoder error locations attributed to the node (β signal); \
       nonzero marks suspected Byzantine behavior"
    ~labels:[ node_label node ]
    "csm_node_suspicion"

let straggler_wait ~early =
  Metric.histogram
    ~help:"Honest-node decode completion time, ticks (early-decode vs full Δ)"
    ~labels:[ ("early", if early then "true" else "false") ]
    ~buckets:tick_buckets "csm_straggler_wait_ticks"

let intermix_audits ~result =
  Metric.counter ~help:"INTERMIX audit verdicts (accept | alert)"
    ~labels:[ ("result", result) ]
    "csm_intermix_audits_total"

let delegation_fraud ~stage =
  Metric.counter
    ~help:"Delegation fraud detections, by pipeline stage"
    ~labels:[ ("stage", stage) ]
    "csm_delegation_fraud_total"

let transport_frame_errors ~node =
  Metric.counter
    ~help:
      "Malformed or undecodable transport frames detected at the node \
       (bad header, truncated/corrupted payload) — each one dropped, \
       never fatal"
    ~labels:[ node_label node ]
    "csm_transport_frame_errors_total"

let hlc_skew ~node =
  Metric.gauge
    ~help:
      "Absolute gap between the node's hybrid-logical-clock physical \
       component and its wall clock at telemetry-snapshot time, seconds \
       — how far causality (or a clock step) dragged the HLC off real \
       time"
    ~labels:[ node_label node ]
    "csm_hlc_skew_seconds"

let flightrec_dumps ~reason =
  Metric.counter
    ~help:
      "Flight-recorder dumps written, by trigger (divergence | \
       frame-errors | suspicion | requested)"
    ~labels:[ ("reason", reason) ]
    "csm_flightrec_dumps_total"

let events_dropped =
  Metric.counter
    ~help:
      "Event-log ring entries overwritten before being read — the \
       telemetry event tail is truncated by this many entries"
    "csm_events_dropped_total"

let node_phases ~phase =
  Metric.counter
    ~help:
      "Protocol phase completions across the cluster's node runtimes \
       (commands | committed | computed | decoded), feeding the \
       per-phase windowed throughput"
    ~labels:[ ("phase", phase) ]
    "csm_node_phases_total"

let commands_committed ~node =
  Metric.counter
    ~help:
      "Commands the node runtime committed and executed (K per accepted \
       round) — the node-side λ numerator"
    ~labels:[ node_label node ]
    "csm_commands_committed_total"

let alerts_fired ~rule =
  Metric.counter
    ~help:"SLO alert rising edges, by rule"
    ~labels:[ ("rule", rule) ]
    "csm_alerts_fired_total"

(* ----- adversary-synthesis family (lib/adversary) ----- *)

let adversary_candidates ~bound ~schedule =
  Metric.counter
    ~help:
      "Byzantine strategies evaluated by the adversary search, by \
       Table-2 bound and exploration schedule"
    ~labels:[ ("bound", bound); ("schedule", schedule) ]
    "csm_adversary_candidates_total"

let adversary_violations ~bound ~kind =
  Metric.counter
    ~help:
      "Oracle violations the adversary search produced, by Table-2 \
       bound and violation kind (safety | liveness)"
    ~labels:[ ("bound", bound); ("kind", kind) ]
    "csm_adversary_violations_total"

let adversary_shrink_steps =
  Metric.counter
    ~help:
      "Accepted shrinking moves while minimizing failing strategies to \
       canonical counterexamples"
    "csm_adversary_shrink_steps_total"

(* ----- OCaml runtime family (Gc.quick_stat + /proc) ----- *)

let gc_minor_collections =
  Metric.gauge ~help:"Minor garbage collections since program start"
    "csm_gc_minor_collections"

let gc_major_collections =
  Metric.gauge ~help:"Major garbage collection cycles since program start"
    "csm_gc_major_collections"

let gc_compactions =
  Metric.gauge ~help:"Heap compactions since program start"
    "csm_gc_compactions"

let gc_heap_words =
  Metric.gauge ~help:"Major heap size, words" "csm_gc_heap_words"

let gc_top_heap_words =
  Metric.gauge ~help:"Largest major heap size reached, words"
    "csm_gc_top_heap_words"

let gc_minor_words =
  Metric.gauge ~help:"Words allocated in the minor heap since program start"
    "csm_gc_minor_words"

let process_rss_bytes =
  Metric.gauge
    ~help:"Resident set size from /proc/self/statm, bytes (0 where absent)"
    "csm_process_rss_bytes"

let process_start_time_seconds =
  Metric.gauge
    ~help:"Unix time the process sampled the runtime family first, seconds"
    "csm_process_start_time_seconds"

(* Wall time of the first runtime sample: a monotone-enough "start
   time" that needs no /proc parsing and survives forks (each child
   re-latches on its own first sample). *)
let start_latch = Atomic.make 0.0

let rss_bytes () =
  (* statm field 2 is resident pages; page size is a safe constant on
     every platform this repo targets, and 0 is an honest fallback *)
  match open_in "/proc/self/statm" with
  | exception Sys_error _ -> 0.0
  | ic ->
    let v =
      match input_line ic with
      | line -> (
        match String.split_on_char ' ' line with
        | _ :: resident :: _ -> (
          match int_of_string_opt resident with
          | Some pages -> float_of_int pages *. 4096.0
          | None -> 0.0)
        | _ -> 0.0)
      | exception End_of_file -> 0.0
    in
    close_in_noerr ic;
    v

let sample_runtime () =
  if Metric.enabled () then begin
    let st = Gc.quick_stat () in
    Metric.set gc_minor_collections (float_of_int st.Gc.minor_collections);
    Metric.set gc_major_collections (float_of_int st.Gc.major_collections);
    Metric.set gc_compactions (float_of_int st.Gc.compactions);
    Metric.set gc_heap_words (float_of_int st.Gc.heap_words);
    Metric.set gc_top_heap_words (float_of_int st.Gc.top_heap_words);
    Metric.set gc_minor_words st.Gc.minor_words;
    Metric.set process_rss_bytes (rss_bytes ());
    if Atomic.get start_latch = 0.0 then
      ignore
        (Atomic.compare_and_set start_latch 0.0 (Unix.gettimeofday ()));
    Metric.set process_start_time_seconds (Atomic.get start_latch)
  end

let throughput_lambda =
  Metric.gauge ~help:"Measured commands-per-round throughput λ"
    "csm_throughput_lambda"

let storage_gamma =
  Metric.gauge ~help:"Storage efficiency γ = K (machines per coded state)"
    "csm_storage_gamma"

let security_beta =
  Metric.gauge ~help:"Security parameter β = b (tolerated Byzantine nodes)"
    "csm_security_beta"
