(* The CSM metric families, defined once so every instrumentation site
   (protocol core, consensus, RS decoder, INTERMIX, harness) agrees on
   names, labels and bucket layouts — and so the EXPERIMENTS.md table
   has a single source of truth.

   Naming: Prometheus conventions (csm_ prefix, _total for counters,
   base-unit suffixes).  Paper symbols: λ throughput, γ = K storage
   efficiency, β = b security (Section 1); node labels are the node ids
   of the simulated cluster.

   Every constructor below interns into the [Metric] registry, so
   calling it repeatedly returns the same instrument.  Hot paths should
   still guard with [Metric.enabled ()] to keep the disabled path
   allocation-free. *)

let node_label i = ("node", string_of_int i)

(* simulator-tick histograms: 1 .. ~500k ticks in powers of two *)
let tick_buckets = Metric.log_buckets ~lo:1.0 ~factor:2.0 ~count:20 ()

let messages_total ~node ~dir ~layer =
  Metric.counter ~help:"Messages sent/received per node and protocol layer"
    ~labels:[ node_label node; ("dir", dir); ("layer", layer) ]
    "csm_messages_total"

let message_bytes_total ~node ~dir ~layer =
  Metric.counter
    ~help:"Approximate wire bytes sent/received per node and protocol layer"
    ~labels:[ node_label node; ("dir", dir); ("layer", layer) ]
    "csm_message_bytes_total"

(* Fold a [Net.stats]-shaped set of per-node arrays into the message
   counters.  Byte totals are skipped when the caller had no sizer
   (all-zero arrays would only add noise). *)
let record_per_node ~layer ~sent ~received ~bytes_sent ~bytes_received =
  if Metric.enabled () then begin
    let n = Array.length sent in
    for i = 0 to n - 1 do
      if sent.(i) > 0 then
        Metric.inc ~by:sent.(i) (messages_total ~node:i ~dir:"sent" ~layer);
      if received.(i) > 0 then
        Metric.inc ~by:received.(i)
          (messages_total ~node:i ~dir:"received" ~layer);
      if bytes_sent.(i) > 0 then
        Metric.inc ~by:bytes_sent.(i)
          (message_bytes_total ~node:i ~dir:"sent" ~layer);
      if bytes_received.(i) > 0 then
        Metric.inc ~by:bytes_received.(i)
          (message_bytes_total ~node:i ~dir:"received" ~layer)
    done
  end

let round_latency =
  Metric.histogram
    ~help:"Wall-clock protocol round latency (consensus + execution), seconds"
    "csm_round_latency_seconds"

let consensus_latency ~protocol =
  Metric.histogram
    ~help:"Simulated consensus completion time, ticks"
    ~labels:[ ("protocol", protocol) ]
    ~buckets:tick_buckets "csm_consensus_latency_ticks"

let pbft_messages ~phase =
  Metric.counter ~help:"Authenticated PBFT messages accepted, by phase"
    ~labels:[ ("phase", phase) ]
    "csm_pbft_messages_total"

let rounds_total ~result =
  Metric.counter
    ~help:"Protocol rounds by outcome (executed | skipped | disagreement)"
    ~labels:[ ("result", result) ]
    "csm_rounds_total"

let rs_decodes ~algorithm ~outcome =
  Metric.counter ~help:"Reed-Solomon decode attempts, by algorithm and outcome"
    ~labels:[ ("algorithm", algorithm); ("outcome", outcome) ]
    "csm_rs_decodes_total"

let rs_fastpath ~outcome =
  Metric.counter
    ~help:
      "Optimistic Reed-Solomon decode attempts, by outcome (hit = \
       candidate verified on every received point; fallback = full Gao \
       decode ran; erasure = suspicion-guided erasure decode recovered \
       after Gao failed)"
    ~labels:[ ("outcome", outcome) ]
    "csm_rs_fastpath_total"

let rs_corrected_symbols =
  Metric.counter
    ~help:"Total erroneous symbols located and corrected by the RS decoder"
    "csm_rs_corrected_symbols_total"

let decode_errors ~node =
  Metric.counter
    ~help:"Times a node's execution result was flagged wrong by the decoder"
    ~labels:[ node_label node ]
    "csm_decode_errors_total"

let node_suspicion ~node =
  Metric.gauge
    ~help:
      "Cumulative decoder error locations attributed to the node (β signal); \
       nonzero marks suspected Byzantine behavior"
    ~labels:[ node_label node ]
    "csm_node_suspicion"

let straggler_wait ~early =
  Metric.histogram
    ~help:"Honest-node decode completion time, ticks (early-decode vs full Δ)"
    ~labels:[ ("early", if early then "true" else "false") ]
    ~buckets:tick_buckets "csm_straggler_wait_ticks"

let intermix_audits ~result =
  Metric.counter ~help:"INTERMIX audit verdicts (accept | alert)"
    ~labels:[ ("result", result) ]
    "csm_intermix_audits_total"

let delegation_fraud ~stage =
  Metric.counter
    ~help:"Delegation fraud detections, by pipeline stage"
    ~labels:[ ("stage", stage) ]
    "csm_delegation_fraud_total"

let transport_frame_errors ~node =
  Metric.counter
    ~help:
      "Malformed or undecodable transport frames detected at the node \
       (bad header, truncated/corrupted payload) — each one dropped, \
       never fatal"
    ~labels:[ node_label node ]
    "csm_transport_frame_errors_total"

let hlc_skew ~node =
  Metric.gauge
    ~help:
      "Absolute gap between the node's hybrid-logical-clock physical \
       component and its wall clock at telemetry-snapshot time, seconds \
       — how far causality (or a clock step) dragged the HLC off real \
       time"
    ~labels:[ node_label node ]
    "csm_hlc_skew_seconds"

let flightrec_dumps ~reason =
  Metric.counter
    ~help:
      "Flight-recorder dumps written, by trigger (divergence | \
       frame-errors | suspicion | requested)"
    ~labels:[ ("reason", reason) ]
    "csm_flightrec_dumps_total"

let throughput_lambda =
  Metric.gauge ~help:"Measured commands-per-round throughput λ"
    "csm_throughput_lambda"

let storage_gamma =
  Metric.gauge ~help:"Storage efficiency γ = K (machines per coded state)"
    "csm_storage_gamma"

let security_beta =
  Metric.gauge ~help:"Security parameter β = b (tolerated Byzantine nodes)"
    "csm_security_beta"
