(* CLI that regenerates the paper's tables as measured artifacts.

     tables table1 [-n N] [--mu MU] [-d D] [--rounds R]
     tables table2
     tables scaling [--mu MU] [-d D]
     tables growth [--mu MU] [-d D]
     tables coding
     tables all *)

open Cmdliner

let print_table1 n mu d rounds =
  let result = Csm_harness.Table1.run ~rounds ~n ~mu ~d () in
  Format.printf "%a@." Csm_harness.Table1.pp_table result

let print_table2 () =
  let checks = Csm_harness.Table2.run_all () in
  Format.printf "%a@." Csm_harness.Table2.pp_table checks;
  let bad =
    List.filter
      (fun c ->
        not (c.Csm_harness.Table2.at_bound_ok && c.Csm_harness.Table2.beyond_fails))
      checks
  in
  if bad <> [] then begin
    Format.printf "FAILED: %d bounds did not validate@." (List.length bad);
    exit 1
  end

let print_scaling mu d ns =
  Format.printf "@[<v>Throughput scaling (μ=%.3f, d=%d)@,%a@]@." mu d
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut
       Csm_harness.Scaling.pp_scaling)
    (Csm_harness.Scaling.throughput_sweep ~mu ~d ns)

let print_growth mu d ns =
  Format.printf "@[<v>Storage/security scaling (μ=%.3f, d=%d)@,%a@]@." mu d
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut
       Csm_harness.Scaling.pp_growth)
    (Csm_harness.Scaling.growth_sweep ~mu ~d ns)

let print_coding ns =
  Format.printf "@[<v>Coding cost: naive vs fast (§6.2)@,%a@]@."
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut
       Csm_harness.Scaling.pp_coding)
    (Csm_harness.Scaling.coding_sweep ns)

let n_arg =
  Arg.(value & opt int 24 & info [ "n" ] ~docv:"N" ~doc:"Network size.")

let mu_arg =
  Arg.(value & opt float 0.25 & info [ "mu" ] ~docv:"MU" ~doc:"Fault fraction.")

let d_arg =
  Arg.(value & opt int 2 & info [ "d" ] ~docv:"D" ~doc:"Transition degree.")

let rounds_arg =
  Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"R" ~doc:"Rounds measured.")

let table1_cmd =
  let run n mu d rounds = print_table1 n mu d rounds in
  Cmd.v (Cmd.info "table1" ~doc:"Measured Table 1 (β, γ, λ per scheme)")
    Term.(const run $ n_arg $ mu_arg $ d_arg $ rounds_arg)

let table2_cmd =
  Cmd.v (Cmd.info "table2" ~doc:"Boundary validation of Table 2")
    Term.(const print_table2 $ const ())

let default_ns = [ 12; 16; 24; 32; 48; 64 ]

let scaling_cmd =
  let run mu d = print_scaling mu d default_ns in
  Cmd.v (Cmd.info "scaling" ~doc:"Throughput λ vs N for all schemes")
    Term.(const run $ mu_arg $ d_arg)

let growth_cmd =
  let run mu d = print_growth mu d [ 16; 32; 64; 128; 256; 512; 1024 ] in
  Cmd.v (Cmd.info "growth" ~doc:"K_max and β vs N (Theorem 1)")
    Term.(const run $ mu_arg $ d_arg)

let coding_cmd =
  let run () = print_coding [ 16; 64; 256; 1024; 2048; 4096; 8192 ] in
  Cmd.v (Cmd.info "coding" ~doc:"Naive vs fast coding operation counts")
    Term.(const run $ const ())

let print_stragglers () =
  Format.printf "@[<v>Straggler tolerance (early decode at d(K-1)+2b+1 results)@,%a@]@."
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut
       Csm_harness.Stragglers.pp_point)
    (Csm_harness.Stragglers.sweep ())

let print_allocation () =
  let module RA = Csm_smr.Random_allocation in
  let n = 24 and k = 6 and epochs = 500 in
  Format.printf
    "@[<v>Random allocation vs CSM (Section 7; N=%d, K=%d, %d epochs)@,%a@]@."
    n k epochs
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut RA.pp_result)
    [
      RA.run_static ~seed:1 ~n ~k ~budget:3 ~epochs;
      RA.run_adaptive ~seed:2 ~n ~k ~budget:3 ~epochs ~delay:0;
      RA.run_adaptive ~seed:3 ~n ~k ~budget:3 ~epochs ~delay:1;
      RA.run_adaptive ~seed:4 ~n ~k ~budget:3 ~epochs ~delay:2;
      RA.csm_reference ~n ~k ~d:1 ~budget:3 ~epochs;
      RA.csm_reference ~n ~k ~d:1 ~budget:9 ~epochs;
    ]

let print_pipeline () =
  Format.printf "@[<v>Pipelining (consensus t+1 ∥ execution t, §2.2 remark)@,%a@,%a@]@."
    Csm_harness.Pipeline.pp
    (Csm_harness.Pipeline.run ~rounds:10 ())
    Csm_harness.Pipeline.pp
    (Csm_harness.Pipeline.run ~rounds:50 ())

let print_intermix () =
  let module CF = Csm_field.Counted.Make (Csm_field.Fp.Default) in
  let module IXC = Csm_intermix.Intermix.Make (CF) in
  Format.printf "@[<v>INTERMIX measured vs worst-case closed form (§6.1)@,";
  List.iter
    (fun (n, k) ->
      let r = Csm_rng.create (n + k) in
      let a = IXC.M.random_mat r n k in
      let x = IXC.M.random_vec r k in
      let ledger = Csm_metrics.Ledger.create () in
      let scope = Csm_metrics.Scope.of_ledger (module CF) ledger in
      let j = 3 in
      let w =
        IXC.malicious_worker ~scope ~strategy:IXC.Adaptive ~bad_rows:[ 1 ]
          ~offset:CF.one a x
      in
      let verdict =
        IXC.run_protocol ~scope w a x
          ~auditors:(List.init j (fun i -> i))
          ~dishonest_auditor:(fun _ -> None)
      in
      Format.printf
        "N=%-4d K=%-4d J=%d  measured=%-8d  worst-case=%-8d  caught=%b  interactions=%d@,"
        n k j
        (Csm_metrics.Ledger.grand_total ledger)
        (IXC.worst_case_complexity ~n ~k ~j)
        (not verdict.IXC.accepted)
        verdict.IXC.max_interactions)
    [ (16, 16); (32, 32); (32, 64); (64, 128); (128, 256) ];
  Format.printf "@]@."

let pipeline_cmd =
  Cmd.v
    (Cmd.info "pipeline" ~doc:"Consensus/execution pipelining makespan")
    Term.(const print_pipeline $ const ())

let intermix_cmd =
  Cmd.v
    (Cmd.info "intermix" ~doc:"INTERMIX measured ops vs closed form")
    Term.(const print_intermix $ const ())

let csv_cmd =
  let dir_arg =
    Arg.(value & opt string "results" & info [ "dir" ] ~doc:"Output directory.")
  in
  let run dir =
    let paths = Csm_harness.Report.write_all ~dir () in
    List.iter (Format.printf "wrote %s@.") paths
  in
  Cmd.v (Cmd.info "csv" ~doc:"Write every sweep as CSV files")
    Term.(const run $ dir_arg)

let stragglers_cmd =
  Cmd.v
    (Cmd.info "stragglers" ~doc:"Early-decode latency vs straggler count")
    Term.(const print_stragglers $ const ())

let allocation_cmd =
  Cmd.v
    (Cmd.info "allocation"
       ~doc:"Random allocation vs CSM under dynamic adversaries (Section 7)")
    Term.(const print_allocation $ const ())

let all_cmd =
  let run () =
    print_table1 24 0.25 2 3;
    Format.printf "@.";
    print_table2 ();
    Format.printf "@.";
    print_scaling 0.25 2 default_ns;
    Format.printf "@.";
    print_growth 0.25 2 [ 16; 32; 64; 128; 256; 512; 1024 ];
    Format.printf "@.";
    print_coding [ 16; 64; 256; 1024; 4096 ];
    Format.printf "@.";
    print_stragglers ();
    Format.printf "@.";
    print_allocation ();
    Format.printf "@.";
    print_pipeline ();
    Format.printf "@.";
    print_intermix ()
  in
  Cmd.v (Cmd.info "all" ~doc:"Every table and sweep") Term.(const run $ const ())

let () =
  (* CSM_TRACE=<path> traces the sweeps into a Chrome trace-event file *)
  Csm_obs.Exporter.install ();
  let info = Cmd.info "tables" ~doc:"Regenerate the CSM paper's tables" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            table1_cmd;
            table2_cmd;
            scaling_cmd;
            growth_cmd;
            coding_cmd;
            stragglers_cmd;
            allocation_cmd;
            pipeline_cmd;
            intermix_cmd;
            csv_cmd;
            all_cmd;
          ]))
