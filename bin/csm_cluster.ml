(* Multi-process CSM cluster driver:

     csm_cluster [-n N] [-k K] [-d D] [-b B] [--rounds R] [--seed S]
                 [--transport loopback|socket|tcp] [--dir DIR]
                 [--port-base P] [--faults "1:drop,2:corrupt,3:delay"]
                 [--deadline SEC] [--out FILE] [--no-verify]
                 [--expect-frame-errors]

   Runs N node runtimes plus a voting client over the chosen transport
   (loopback = threads in this process; socket = one forked process per
   node over Unix-domain sockets; tcp = forked processes over TCP
   loopback), drives R protocol rounds end to end, and verifies the
   client's voted ledger byte-for-byte against a fault-free
   single-process engine run at the same seed.

   --faults turns nodes Byzantine at the transport layer: `drop`
   withholds every protocol frame, `delay` sends frames ~20ms late
   (`delay:0.05` for a custom lag), `corrupt` mangles every payload so
   receivers detect and drop it (visible as csm_transport_frame_errors_total
   when CSM_METRICS is set).

   Exit status: 0 = verified (or --no-verify), 1 = ledger mismatch /
   missing acceptance (or --expect-frame-errors unmet), 2 = usage. *)

open Cmdliner
module F = Csm_field.Fp.Default
module Params = Csm_core.Params
module Node = Csm_transport.Node
module Cluster = Csm_transport.Cluster
module C = Cluster.Make (F)
module Transport = Csm_transport.Transport
module Metric = Csm_obs.Metric
module Tel = Csm_obs.Telemetry
module Exporter = Csm_obs.Exporter
module Json = Csm_obs.Json
module Prom = Csm_obs.Prom

let parse_fault s =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
    let node = String.sub s 0 i in
    let kind = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt node with
    | None -> None
    | Some node -> (
      match String.split_on_char ':' kind with
      | [ "drop" ] -> Some (node, Node.Drop)
      | [ "corrupt" ] -> Some (node, Node.Corrupt)
      | [ "delay" ] -> Some (node, Node.Delay 0.02)
      | [ "delay"; lag ] -> (
        match float_of_string_opt lag with
        | Some lag when lag >= 0.0 -> Some (node, Node.Delay lag)
        | _ -> None)
      | _ -> None))

let parse_faults s =
  if String.trim s = "" then Some []
  else
    let parts = String.split_on_char ',' (String.trim s) in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | p :: rest -> (
        match parse_fault (String.trim p) with
        | Some f -> go (f :: acc) rest
        | None -> None)
    in
    go [] parts

let stats_json = function
  | None -> Json.Obj [ ("missing", Json.Bool true) ]
  | Some (s : Transport.stats) ->
    Json.Obj
      [
        ("frames_sent", Json.Int s.Transport.frames_sent);
        ("frames_received", Json.Int s.Transport.frames_received);
        ("bytes_sent", Json.Int s.Transport.bytes_sent);
        ("bytes_received", Json.Int s.Transport.bytes_received);
        ("frame_errors", Json.Int s.Transport.frame_errors);
      ]

let hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let result_json ~n ~k ~d ~b ~rounds ~seed ~transport ~faults (r : C.result) =
  Json.Obj
    [
      ("schema", Json.Str "csm-cluster-report/1");
      ("host", Exporter.host ());
      ( "config",
        Json.Obj
          [
            ("n", Json.Int n);
            ("k", Json.Int k);
            ("d", Json.Int d);
            ("b", Json.Int b);
            ("rounds", Json.Int rounds);
            ("seed", Json.Int seed);
            ("transport", Json.Str transport);
            ( "faults",
              Json.List
                (List.map
                   (fun (i, f) ->
                     Json.Obj
                       [
                         ("node", Json.Int i);
                         ("fault", Json.Str (Node.fault_name f));
                       ])
                   faults) );
          ] );
      ("ok", Json.Bool r.C.ok);
      ( "ledger",
        Json.List
          (Array.to_list
             (Array.map
                (function
                  | Some p -> Json.Str (hex p)
                  | None -> Json.Null)
                r.C.ledger)) );
      ( "reference",
        Json.List
          (Array.to_list (Array.map (fun p -> Json.Str (hex p)) r.C.reference))
      );
      ( "outputs_received",
        Json.List
          (Array.to_list (Array.map (fun c -> Json.Int c) r.C.outputs_received))
      );
      ("stats", Json.List (Array.to_list (Array.map stats_json r.C.stats)));
    ]

let total_frame_errors (r : C.result) =
  Array.fold_left
    (fun acc s ->
      match s with Some s -> acc + s.Transport.frame_errors | None -> acc)
    0 r.C.stats

let run n k d b rounds seed transport dir port_base faults_s deadline out
    no_verify expect_frame_errors =
  Exporter.install ();
  let faults =
    match parse_faults faults_s with
    | Some fs -> fs
    | None ->
      Printf.eprintf "csm_cluster: bad --faults %S (want \"1:drop,2:corrupt\")\n"
        faults_s;
      exit 2
  in
  List.iter
    (fun (i, _) ->
      if i < 0 || i >= n then begin
        Printf.eprintf "csm_cluster: fault node %d out of range [0, %d)\n" i n;
        exit 2
      end)
    faults;
  if List.length faults > b then
    Printf.eprintf
      "csm_cluster: warning: %d faulty nodes exceed the b=%d budget\n"
      (List.length faults) b;
  let params =
    try Params.make ~network:Params.Sync ~n ~k ~d ~b
    with Invalid_argument msg ->
      prerr_endline msg;
      exit 2
  in
  let cleanup_dir = ref None in
  let mode =
    match transport with
    | "loopback" -> Cluster.Loopback
    | "socket" ->
      let dir =
        match dir with
        | Some d -> d
        | None ->
          let d =
            Filename.concat
              (Filename.get_temp_dir_name ())
              (Printf.sprintf "csm-cluster-%d" (Unix.getpid ()))
          in
          (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
          cleanup_dir := Some d;
          d
      in
      Cluster.Uds dir
    | "tcp" -> Cluster.Tcp port_base
    | other ->
      Printf.eprintf "csm_cluster: unknown --transport %s\n" other;
      exit 2
  in
  let cfg = { C.params; rounds; seed; mode; faults; deadline } in
  Printf.printf "csm_cluster: N=%d K=%d d=%d b=%d rounds=%d seed=%d %s%s\n%!" n
    k d b rounds seed
    (Cluster.mode_name mode)
    (if faults = [] then ""
     else
       " faults="
       ^ String.concat ","
           (List.map
              (fun (i, f) -> Printf.sprintf "%d:%s" i (Node.fault_name f))
              faults));
  let result = C.run cfg in
  (match !cleanup_dir with
  | Some d -> (
    try
      Array.iter
        (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
        (Sys.readdir d);
      Unix.rmdir d
    with Sys_error _ | Unix.Unix_error _ -> ())
  | None -> ());
  Array.iteri
    (fun r entry ->
      Printf.printf "round %d: accepted=%b outputs=%d match=%b\n" r
        (entry <> None)
        result.C.outputs_received.(r)
        (entry = Some result.C.reference.(r)))
    result.C.ledger;
  let errors = total_frame_errors result in
  Printf.printf "transport: frame_errors=%d\n" errors;
  Array.iteri
    (fun i s ->
      match s with
      | Some (s : Transport.stats) ->
        Printf.printf
          "  endpoint %d%s: sent=%d received=%d bytes_out=%d bytes_in=%d \
           errors=%d\n"
          i
          (if i = n then " (client)" else "")
          s.Transport.frames_sent s.Transport.frames_received
          s.Transport.bytes_sent s.Transport.bytes_received
          s.Transport.frame_errors
      | None -> Printf.printf "  endpoint %d: no stats (no reply)\n" i)
    result.C.stats;
  (* fold the socket-boundary counters into the metrics registry so a
     CSM_METRICS exposition shows the transport layer next to the
     simulator layers *)
  if Metric.enabled () then begin
    let np1 = n + 1 in
    let arr f =
      Array.init np1 (fun i ->
          match result.C.stats.(i) with Some s -> f s | None -> 0)
    in
    Tel.record_per_node ~layer:"transport"
      ~sent:(arr (fun s -> s.Transport.frames_sent))
      ~received:(arr (fun s -> s.Transport.frames_received))
      ~bytes_sent:(arr (fun s -> s.Transport.bytes_sent))
      ~bytes_received:(arr (fun s -> s.Transport.bytes_received));
    Array.iteri
      (fun i s ->
        match s with
        | Some s when s.Transport.frame_errors > 0 ->
          Metric.inc ~by:s.Transport.frame_errors
            (Tel.transport_frame_errors ~node:i)
        | _ -> ())
      result.C.stats;
    match Prom.metrics_path () with
    | Some path ->
      Prom.write ~path;
      Printf.printf "metrics: wrote %s\n" path
    | None -> ()
  end;
  (match out with
  | Some path ->
    Json.write ~path
      (result_json ~n ~k ~d ~b ~rounds ~seed ~transport ~faults result);
    Printf.printf "report: wrote %s\n" path
  | None -> ());
  let verified = no_verify || result.C.ok in
  Printf.printf "verify: %s\n"
    (if no_verify then "skipped" else if result.C.ok then "ok" else "MISMATCH");
  if expect_frame_errors && errors = 0 then begin
    Printf.printf "expected frame errors, saw none\n";
    exit 1
  end;
  exit (if verified then 0 else 1)

let () =
  let n = Arg.(value & opt int 3 & info [ "n" ] ~doc:"Nodes.") in
  let k = Arg.(value & opt int 1 & info [ "k" ] ~doc:"State machines.") in
  let d = Arg.(value & opt int 1 & info [ "d" ] ~doc:"Degree.") in
  let b = Arg.(value & opt int 1 & info [ "b" ] ~doc:"Byzantine budget.") in
  let rounds = Arg.(value & opt int 2 & info [ "rounds" ] ~doc:"Rounds.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let transport =
    Arg.(
      value & opt string "socket"
      & info [ "transport" ] ~doc:"loopback|socket|tcp.")
  in
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~doc:"Unix-socket directory (socket transport).")
  in
  let port_base =
    Arg.(
      value & opt int 17700
      & info [ "port-base" ] ~doc:"TCP base port (tcp transport).")
  in
  let faults =
    Arg.(
      value & opt string ""
      & info [ "faults" ]
          ~doc:
            "Transport-level Byzantine faults, e.g. \
             $(b,1:drop,2:corrupt,0:delay:0.05).")
  in
  let deadline =
    Arg.(
      value & opt float 5.0
      & info [ "deadline" ] ~doc:"Per-wait deadline in seconds.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~doc:"Write a JSON cluster report to this path.")
  in
  let no_verify =
    Arg.(
      value & flag
      & info [ "no-verify" ]
          ~doc:"Skip the reference-run comparison (exit 0 regardless).")
  in
  let expect_frame_errors =
    Arg.(
      value & flag
      & info [ "expect-frame-errors" ]
          ~doc:
            "Fail unless at least one malformed frame was detected (use with \
             a corrupt fault).")
  in
  let cmd =
    Cmd.v
      (Cmd.info "csm_cluster"
         ~doc:"Run a real multi-process CSM cluster over sockets")
      Term.(
        const run $ n $ k $ d $ b $ rounds $ seed $ transport $ dir $ port_base
        $ faults $ deadline $ out $ no_verify $ expect_frame_errors)
  in
  exit (Cmd.eval cmd)
