(* Multi-process CSM cluster driver:

     csm_cluster [-n N] [-k K] [-d D] [-b B] [--rounds R] [--seed S]
                 [--transport loopback|socket|tcp] [--dir DIR]
                 [--port-base P] [--faults "1:drop,2:corrupt,3:delay"]
                 [--deadline SEC] [--out FILE] [--no-verify]
                 [--expect-frame-errors]
                 [--trace] [--trace-out FILE] [--prom-out FILE]
                 [--flightrec] [--flightrec-out FILE]
                 [--expect-cross-flows N] [--replay FILE]
                 [--serve PORT] [--watch] [--alert RULE] [--lambda-floor F]

   Runs N node runtimes plus a voting client over the chosen transport
   (loopback = threads in this process; socket = one forked process per
   node over Unix-domain sockets; tcp = forked processes over TCP
   loopback), drives R protocol rounds end to end, and verifies the
   client's voted ledger byte-for-byte against a fault-free
   single-process engine run at the same seed.

   --faults turns nodes Byzantine at the transport layer: `drop`
   withholds every protocol frame, `delay` sends frames ~20ms late
   (`delay:0.05` for a custom lag), `corrupt` mangles every payload so
   receivers detect and drop it (visible as csm_transport_frame_errors_total
   when CSM_METRICS is set), `lie` ships well-formed but wrong Result
   vectors that only the peers' Reed-Solomon decode catches (suspicion).
   `--faults strategy:FILE` instead loads a whole adversary strategy —
   a csm-adversary-trace/1 counterexample from csm_adversary, or bare
   strategy JSON — and maps each searched plan onto a transport fault.

   Live telemetry: --serve PORT / --watch / --alert / --lambda-floor
   (or CSM_TELEMETRY_INTERVAL=SEC) make the nodes stream
   csm-node-telemetry/2 delta frames while the run is in flight; the
   client merges them idempotently into windowed rates (lambda, per-
   phase throughput, rolling latency quantiles) and evaluates SLO alert
   rules on every merge.  --serve answers /metrics (Prometheus),
   /healthz and /windows.json mid-run; an alert rising edge is a
   flight-recorder dump trigger (reason "alert").

   Observability: --trace (or CSM_CLUSTER_TRACE=1, or =PATH) stamps
   every protocol frame with the frame-v2 trace extension, gathers each
   process's end-of-run telemetry bundle and writes ONE merged Chrome
   trace with cross-node flow arrows ordered by HLC.  --prom-out writes
   the cluster-merged Prometheus exposition.  --flightrec (or
   CSM_FLIGHTREC=1/PATH) arms the flight-recorder dump: a
   csm-flightrec/1 document is written on ledger divergence, frame
   errors, decoder suspicion, or on request.  --replay FILE recomputes
   a dump's recorded rounds from its embedded seed and checks them
   byte-identical.

   Exit status: 0 = verified (or --no-verify), 1 = ledger mismatch /
   missing acceptance (or --expect-frame-errors / --expect-cross-flows
   unmet, or a --replay mismatch), 2 = usage. *)

open Cmdliner
module F = Csm_field.Fp.Default
module Params = Csm_core.Params
module Node = Csm_transport.Node
module Cluster = Csm_transport.Cluster
module C = Cluster.Make (F)
module Transport = Csm_transport.Transport
module Metric = Csm_obs.Metric
module Tel = Csm_obs.Telemetry
module Exporter = Csm_obs.Exporter
module Json = Csm_obs.Json
module Prom = Csm_obs.Prom
module Agg = Csm_obs.Agg
module Clock = Csm_obs.Clock
module Flight = Csm_obs.Flight
module Live = Csm_obs.Live
module Alert = Csm_obs.Alert
module Http = Csm_obs.Http

module Adv = Csm_adversary

(* ---- --faults parsing (a cmdliner conv: bad input is a usage error
   that lists the valid kinds, exit 124) ---- *)

let fault_kinds_hint =
  "valid fault kinds: drop, corrupt, lie, delay (or delay:SECONDS); or \
   give the whole spec as strategy:FILE to load a csm-adversary-trace/1 \
   counterexample (or bare strategy JSON)"

let parse_fault_token tok =
  match String.index_opt tok ':' with
  | None ->
    Error (Printf.sprintf "bad fault %S (want NODE:KIND); %s" tok fault_kinds_hint)
  | Some i -> (
    let node_s = String.sub tok 0 i in
    let kind = String.sub tok (i + 1) (String.length tok - i - 1) in
    match int_of_string_opt node_s with
    | None ->
      Error
        (Printf.sprintf "bad fault node %S in %S; %s" node_s tok
           fault_kinds_hint)
    | Some node -> (
      match String.split_on_char ':' kind with
      | [ "drop" ] -> Ok (node, Node.Drop)
      | [ "corrupt" ] -> Ok (node, Node.Corrupt)
      | [ "lie" ] -> Ok (node, Node.Lie Node.lie_default)
      | [ "delay" ] -> Ok (node, Node.Delay 0.02)
      | [ "delay"; lag ] -> (
        match float_of_string_opt lag with
        | Some lag when lag >= 0.0 -> Ok (node, Node.Delay lag)
        | _ ->
          Error
            (Printf.sprintf "bad delay %S for node %d (want seconds >= 0)" lag
               node))
      | k :: _ ->
        Error
          (Printf.sprintf "unknown fault kind %S for node %d; %s" k node
             fault_kinds_hint)
      | [] ->
        Error
          (Printf.sprintf "missing fault kind for node %d; %s" node
             fault_kinds_hint)))

(* A searched strategy's round schedule, coarsened to the transport
   layer's (period, from) lie/drop schedule.  Only [r] uses a period
   longer than any practical run so the fault fires exactly once. *)
let schedule_of_rounds = function
  | Adv.Strategy.Always -> (1, 0)
  | Adv.Strategy.Only (r :: _) -> (1_000_000, max 0 r)
  | Adv.Strategy.Only [] -> (1, 0)
  | Adv.Strategy.From r -> (1, max 0 r)
  | Adv.Strategy.Until _ -> (1, 0)
  | Adv.Strategy.Every { period; phase } -> (max 1 period, max 0 phase)

let fault_of_plan (p : Adv.Strategy.plan) =
  match p.Adv.Strategy.steps with
  | [] -> None
  | s :: _ ->
    let l_period, l_from = schedule_of_rounds s.Adv.Strategy.rounds in
    let lie l_offset l_coord =
      Node.Lie { Node.l_offset; l_coord; l_period; l_from }
    in
    Some
      (match s.Adv.Strategy.act with
      | Adv.Strategy.Silence _ -> (p.Adv.Strategy.node, Node.Drop)
      | Adv.Strategy.Shift c -> (p.Adv.Strategy.node, lie c None)
      | Adv.Strategy.Coord { index; delta } ->
        (p.Adv.Strategy.node, lie delta (Some index))
      | Adv.Strategy.Codeword _ | Adv.Strategy.Garbage _
      | Adv.Strategy.Equivocate _ ->
        ( p.Adv.Strategy.node,
          Node.Lie
            { Node.lie_default with Node.l_period = l_period; l_from } ))

let faults_of_strategy_file path =
  let doc =
    try Ok (Json.parse_file path) with
    | Sys_error m -> Error m
    | Json.Parse_error m -> Error (Printf.sprintf "%s: %s" path m)
  in
  Result.bind doc (fun doc ->
      let strategy =
        match Option.bind (Json.member "schema" doc) Json.to_string_opt with
        | Some _ ->
          Result.map
            (fun (t : Adv.Trace.t) -> t.Adv.Trace.strategy)
            (Adv.Trace.of_json doc)
        | None -> Adv.Strategy.of_json doc
      in
      Result.map
        (fun s ->
          List.filter_map fault_of_plan s.Adv.Strategy.plans)
        strategy)

let parse_faults s =
  let s = String.trim s in
  if s = "" then Ok []
  else if String.length s > 9 && String.equal (String.sub s 0 9) "strategy:"
  then faults_of_strategy_file (String.sub s 9 (String.length s - 9))
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest ->
        Result.bind (parse_fault_token (String.trim p)) (fun f ->
            go (f :: acc) rest)
    in
    go [] parts

let faults_conv =
  let parse s =
    match parse_faults s with
    | Ok fs -> Ok fs
    | Error m -> Error (`Msg m)
  in
  let print ppf fs =
    Format.pp_print_string ppf
      (String.concat ","
         (List.map
            (fun (i, f) -> Printf.sprintf "%d:%s" i (Node.fault_name f))
            fs))
  in
  Arg.conv (parse, print)

let stats_json = function
  | None -> Json.Obj [ ("missing", Json.Bool true) ]
  | Some (s : Transport.stats) ->
    Json.Obj
      [
        ("frames_sent", Json.Int s.Transport.frames_sent);
        ("frames_received", Json.Int s.Transport.frames_received);
        ("bytes_sent", Json.Int s.Transport.bytes_sent);
        ("bytes_received", Json.Int s.Transport.bytes_received);
        ("frame_errors", Json.Int s.Transport.frame_errors);
      ]

let hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let config_json ~n ~k ~d ~b ~rounds ~seed ~transport ~faults =
  Json.Obj
    [
      ("n", Json.Int n);
      ("k", Json.Int k);
      ("d", Json.Int d);
      ("b", Json.Int b);
      ("rounds", Json.Int rounds);
      ("seed", Json.Int seed);
      ("transport", Json.Str transport);
      ( "faults",
        Json.List
          (List.map
             (fun (i, f) ->
               Json.Obj
                 [
                   ("node", Json.Int i); ("fault", Json.Str (Node.fault_name f));
                 ])
             faults) );
    ]

(* Whole-run committed-command throughput: k commands per accepted
   round over the client's measured wall time — the value the live
   windowed λ is checked against. *)
let final_lambda ~k (r : C.result) =
  let accepted =
    Array.fold_left
      (fun acc e -> if Option.is_some e then acc + 1 else acc)
      0 r.C.ledger
  in
  if r.C.run_seconds > 0.0 then
    float_of_int (k * accepted) /. r.C.run_seconds
  else 0.0

let result_json ~n ~k ~d ~b ~rounds ~seed ~transport ~faults ?live
    (r : C.result) =
  Json.Obj
    [
      ("schema", Json.Str "csm-cluster-report/1");
      ("host", Exporter.host ());
      ("config", config_json ~n ~k ~d ~b ~rounds ~seed ~transport ~faults);
      ("ok", Json.Bool r.C.ok);
      ("run_seconds", Json.Float r.C.run_seconds);
      ("lambda", Json.Float (final_lambda ~k r));
      ( "live",
        match live with
        | None -> Json.Null
        | Some live -> Live.windows_json live );
      ( "telemetry",
        match r.C.telemetry with
        | [] -> Json.Null
        | bundles ->
          Json.Obj
            [
              ("bundles", Json.Int (List.length bundles));
              ("cross_flows", Json.Int (Agg.cross_flows bundles));
              ("hlc", Json.Int (Agg.max_hlc bundles));
            ] );
      ( "ledger",
        Json.List
          (Array.to_list
             (Array.map
                (function
                  | Some p -> Json.Str (hex p)
                  | None -> Json.Null)
                r.C.ledger)) );
      ( "reference",
        Json.List
          (Array.to_list (Array.map (fun p -> Json.Str (hex p)) r.C.reference))
      );
      ( "outputs_received",
        Json.List
          (Array.to_list (Array.map (fun c -> Json.Int c) r.C.outputs_received))
      );
      ("stats", Json.List (Array.to_list (Array.map stats_json r.C.stats)));
    ]

let total_frame_errors (r : C.result) =
  Array.fold_left
    (fun acc s ->
      match s with Some s -> acc + s.Transport.frame_errors | None -> acc)
    0 r.C.stats

(* ---- flight-recorder dump (csm-flightrec/1) ---- *)

let flightrec_json ~n ~k ~d ~b ~rounds ~seed ~transport ~faults ~reason
    (r : C.result) =
  Json.Obj
    [
      ("schema", Json.Str "csm-flightrec/1");
      ("host", Exporter.host ());
      ("reason", Json.Str reason);
      ("hlc", Json.Int (Agg.max_hlc r.C.telemetry));
      ("config", config_json ~n ~k ~d ~b ~rounds ~seed ~transport ~faults);
      ( "rounds",
        Json.List
          (List.init rounds (fun i ->
               Json.Obj
                 [
                   ("round", Json.Int i);
                   ( "accepted",
                     match r.C.ledger.(i) with
                     | Some p -> Json.Str (hex p)
                     | None -> Json.Null );
                   ("reference", Json.Str (hex r.C.reference.(i)));
                   ("outputs", Json.Int r.C.outputs_received.(i));
                 ])) );
      ( "flights",
        Json.List
          (List.map
             (fun (bdl : Agg.bundle) ->
               Json.Obj
                 [
                   ("node", Json.Int bdl.Agg.b_node);
                   ("pid", Json.Int bdl.Agg.b_pid);
                   ("recorded", Json.Int bdl.Agg.b_flight_recorded);
                   ( "entries",
                     Json.List (List.map Flight.entry_json bdl.Agg.b_flight) );
                 ])
             r.C.telemetry) );
    ]

let suspicion_detected bundles =
  List.exists
    (fun (v : Metric.view) ->
      String.equal v.Metric.name "csm_node_suspicion"
      && List.exists
           (fun (s : Metric.sample) ->
             match s.Metric.value with
             | Metric.V_gauge g -> g > 0.0
             | _ -> false)
           v.Metric.samples)
    (Agg.merged_views bundles)

(* --replay: recompute a dump's recorded rounds from its embedded seed
   and check the reference payloads byte-identical — the flight
   recorder's "black box is enough to reproduce the round" guarantee *)
let replay_fail msg =
  Printf.eprintf "csm_cluster: replay: %s\n" msg;
  exit 2

let replay_dump path =
  let fail = replay_fail in
  let doc =
    try Json.parse_file path with
    | Json.Parse_error m -> fail ("parse error in " ^ path ^ ": " ^ m)
    | Sys_error m -> fail m
  in
  (match Option.bind (Json.member "schema" doc) Json.to_string_opt with
  | Some "csm-flightrec/1" -> ()
  | _ -> fail (path ^ " is not a csm-flightrec/1 document"));
  let cfgj =
    match Json.member "config" doc with
    | Some c -> c
    | None -> fail "missing config"
  in
  let geti key =
    match Option.bind (Json.member key cfgj) Json.to_int_opt with
    | Some v -> v
    | None -> fail ("config." ^ key ^ " missing")
  in
  let n = geti "n" and k = geti "k" and d = geti "d" and b = geti "b" in
  let rounds = geti "rounds" and seed = geti "seed" in
  let params =
    try Params.make ~network:Params.Sync ~n ~k ~d ~b
    with Invalid_argument m -> fail m
  in
  let cfg =
    {
      C.params;
      rounds;
      seed;
      mode = Cluster.Loopback;
      faults = [];
      deadline = 5.0;
      trace = false;
      telemetry = false;
      stream = None;
      live = None;
    }
  in
  let reference = C.reference_ledger cfg in
  let recorded =
    match Json.member "rounds" doc with
    | Some (Json.List l) -> l
    | _ -> fail "missing rounds"
  in
  let ok = ref (recorded <> []) in
  List.iter
    (fun item ->
      match
        ( Option.bind (Json.member "round" item) Json.to_int_opt,
          Option.bind (Json.member "reference" item) Json.to_string_opt )
      with
      | Some r, Some h when r >= 0 && r < rounds ->
        let same = String.equal h (hex reference.(r)) in
        if not same then ok := false;
        Printf.printf "replay round %d: %s\n" r
          (if same then "identical" else "MISMATCH")
      | _ ->
        ok := false;
        Printf.printf "replay: malformed round entry\n")
    recorded;
  Printf.printf "replay: %s (%d rounds, seed=%d)\n"
    (if !ok then "ok" else "MISMATCH")
    rounds seed;
  exit (if !ok then 0 else 1)

(* CSM_CLUSTER_TRACE / CSM_FLIGHTREC: unset/empty/0 = off, 1/true = on
   with the default output path, anything else = on, value is the path *)
let env_spec name =
  match Sys.getenv_opt name with
  | None | Some "" | Some "0" -> None
  | Some v -> Some v

let env_path spec =
  match spec with Some "1" | Some "true" | None -> None | Some p -> Some p

let run n k d b rounds seed transport dir port_base faults deadline out
    no_verify expect_frame_errors trace_flag trace_out prom_out flightrec_flag
    flightrec_out expect_cross_flows replay serve watch alerts_s lambda_floor =
  (match replay with Some path -> replay_dump path | None -> ());
  Exporter.install ();
  List.iter
    (fun (i, _) ->
      if i < 0 || i >= n then begin
        Printf.eprintf "csm_cluster: fault node %d out of range [0, %d)\n" i n;
        exit 2
      end)
    faults;
  if List.length faults > b then
    Printf.eprintf
      "csm_cluster: warning: %d faulty nodes exceed the b=%d budget\n"
      (List.length faults) b;
  let params =
    try Params.make ~network:Params.Sync ~n ~k ~d ~b
    with Invalid_argument msg ->
      prerr_endline msg;
      exit 2
  in
  let cleanup_dir = ref None in
  let mode =
    match transport with
    | "loopback" -> Cluster.Loopback
    | "socket" ->
      let dir =
        match dir with
        | Some d -> d
        | None ->
          let d =
            Filename.concat
              (Filename.get_temp_dir_name ())
              (Printf.sprintf "csm-cluster-%d" (Unix.getpid ()))
          in
          (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
          cleanup_dir := Some d;
          d
      in
      Cluster.Uds dir
    | "tcp" -> Cluster.Tcp port_base
    | other ->
      Printf.eprintf "csm_cluster: unknown --transport %s\n" other;
      exit 2
  in
  let trace_env = env_spec "CSM_CLUSTER_TRACE" in
  let flightrec_env = env_spec "CSM_FLIGHTREC" in
  let trace =
    trace_flag || Option.is_some trace_env || Option.is_some trace_out
  in
  let trace_out =
    match (trace_out, env_path trace_env) with
    | Some p, _ -> p
    | None, Some p -> p
    | None, None -> "csm-cluster-trace.json"
  in
  let flightrec_armed =
    flightrec_flag || Option.is_some flightrec_env
    || Option.is_some flightrec_out
  in
  let flightrec_requested = flightrec_flag || Option.is_some flightrec_env in
  let flightrec_out =
    match (flightrec_out, env_path flightrec_env) with
    | Some p, _ -> p
    | None, Some p -> p
    | None, None -> "csm-flightrec.json"
  in
  let telemetry = trace || flightrec_armed in
  (* ---- live streaming telemetry (--serve / --watch / --alert /
     CSM_TELEMETRY_INTERVAL) ---- *)
  let interval_env =
    match Sys.getenv_opt "CSM_TELEMETRY_INTERVAL" with
    | None | Some "" -> None
    | Some v -> (
      match float_of_string_opt v with
      | Some f when f > 0.0 && Float.is_finite f -> Some f
      | _ ->
        Printf.eprintf "csm_cluster: bad CSM_TELEMETRY_INTERVAL %S\n" v;
        exit 2)
  in
  let alert_rules =
    List.map
      (fun spec ->
        match Alert.parse spec with
        | Some r -> r
        | None ->
          Printf.eprintf
            "csm_cluster: bad --alert %S (want \"name:metric>thr\")\n" spec;
          exit 2)
      alerts_s
  in
  let streaming =
    Option.is_some serve || watch || alerts_s <> []
    || Option.is_some lambda_floor
    || Option.is_some interval_env
  in
  let live =
    if not streaming then None
    else begin
      (* node registries must be populated for the deltas to carry
         anything; enable before C.run so forked children inherit it *)
      Metric.enable ();
      Some
        (Live.create
           ~rules:(Alert.default_rules ?lambda_floor () @ alert_rules)
           ~k ())
    end
  in
  let stream =
    if streaming then Some (Option.value ~default:0.1 interval_env) else None
  in
  let cfg =
    { C.params; rounds; seed; mode; faults; deadline; trace; telemetry;
      stream; live }
  in
  (* the scrape endpoint serves the merged live view for the whole run *)
  let server =
    match (serve, live) with
    | Some port, Some live ->
      let s =
        try
          Http.serve ~port (fun path ->
              match path with
              | "/metrics" -> Some (Http.text (Live.scrape live))
              | "/healthz" ->
                Some (Http.text ~content_type:"text/plain" "ok\n")
              | "/windows.json" ->
                Some
                  (Http.text ~content_type:"application/json"
                     (Json.to_string (Live.windows_json live)))
              | _ -> None)
        with Unix.Unix_error (e, _, _) ->
          Printf.eprintf "csm_cluster: --serve %d: %s\n" port
            (Unix.error_message e);
          exit 2
      in
      Printf.printf "serve: http://127.0.0.1:%d/metrics (also /healthz, \
                     /windows.json)\n%!" (Http.port s);
      Some s
    | _ -> None
  in
  (* the terminal ticker: one status line per second while running *)
  let watch_stop = Atomic.make false in
  let watcher =
    match (watch, live) with
    | true, Some live ->
      Some
        (Thread.create
           (fun () ->
             let t0 = Clock.mono () in
             while not (Atomic.get watch_stop) do
               Live.evaluate_alerts live;
               let firing = Alert.firing (Live.alerts live) in
               Printf.printf "watch: +%5.1fs commits=%d lambda=%.1f/s%s\n%!"
                 (Clock.mono () -. t0)
                 (Live.commits live) (Live.lambda live)
                 (match firing with
                 | [] -> ""
                 | fs ->
                   " ALERTS="
                   ^ String.concat ","
                       (List.map (fun (r, _) -> r.Alert.a_name) fs));
               Thread.delay 1.0
             done)
           ())
    | _ -> None
  in
  Printf.printf "csm_cluster: N=%d K=%d d=%d b=%d rounds=%d seed=%d %s%s%s\n%!"
    n k d b rounds seed
    (Cluster.mode_name mode)
    (if faults = [] then ""
     else
       " faults="
       ^ String.concat ","
           (List.map
              (fun (i, f) -> Printf.sprintf "%d:%s" i (Node.fault_name f))
              faults))
    (if trace then " trace=on"
     else if telemetry then " flightrec=armed"
     else "");
  let result = C.run cfg in
  Atomic.set watch_stop true;
  Option.iter Thread.join watcher;
  (match !cleanup_dir with
  | Some d -> (
    try
      Array.iter
        (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
        (Sys.readdir d);
      Unix.rmdir d
    with Sys_error _ | Unix.Unix_error _ -> ())
  | None -> ());
  Array.iteri
    (fun r entry ->
      Printf.printf "round %d: accepted=%b outputs=%d match=%b\n" r
        (entry <> None)
        result.C.outputs_received.(r)
        (entry = Some result.C.reference.(r)))
    result.C.ledger;
  let errors = total_frame_errors result in
  Printf.printf "transport: frame_errors=%d\n" errors;
  (match live with
  | Some live ->
    let applied, stale, rejected = Live.deltas live in
    let firing = Alert.firing (Live.alerts live) in
    Printf.printf
      "live: commits=%d lambda_window=%.1f/s lambda_run=%.1f/s \
       deltas=%d(+%d stale, %d rejected)%s\n"
      (Live.commits live) (Live.lambda live) (final_lambda ~k result) applied
      stale rejected
      (match firing with
      | [] -> ""
      | fs ->
        " ALERTS="
        ^ String.concat "," (List.map (fun (r, _) -> r.Alert.a_name) fs))
  | None -> ());
  Array.iteri
    (fun i s ->
      match s with
      | Some (s : Transport.stats) ->
        Printf.printf
          "  endpoint %d%s: sent=%d received=%d bytes_out=%d bytes_in=%d \
           errors=%d\n"
          i
          (if i = n then " (client)" else "")
          s.Transport.frames_sent s.Transport.frames_received
          s.Transport.bytes_sent s.Transport.bytes_received
          s.Transport.frame_errors
      | None -> Printf.printf "  endpoint %d: no stats (no reply)\n" i)
    result.C.stats;
  (* ---- observability: merged trace, merged exposition, flight dump ---- *)
  let cross_flows =
    if telemetry then Agg.cross_flows result.C.telemetry else 0
  in
  if telemetry then begin
    let bundles = result.C.telemetry in
    let processes =
      List.length (Agg.dedup bundles)
    in
    Printf.printf "telemetry: bundles=%d/%d processes=%d cross_flows=%d hlc=%s\n"
      (List.length bundles) (n + 1) processes cross_flows
      (Format.asprintf "%a" Clock.pp (Agg.max_hlc bundles));
    if trace then begin
      Json.write ~path:trace_out (Agg.cluster_trace bundles);
      Printf.printf "trace: wrote %s (%d processes, %d cross-node flows)\n"
        trace_out processes cross_flows
    end;
    (match prom_out with
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (Prom.render_views (Agg.merged_views bundles)));
      Printf.printf "prom: wrote %s (cluster-merged)\n" path
    | None -> ());
    let alert_fired =
      match live with
      | Some live -> Alert.fired_ever (Live.alerts live)
      | None -> false
    in
    let dump_reason =
      if (not no_verify) && not result.C.ok then Some "divergence"
      else if total_frame_errors result > 0 then Some "frame-errors"
      else if suspicion_detected bundles then Some "suspicion"
      else if alert_fired then Some "alert"
      else if flightrec_requested then Some "requested"
      else None
    in
    match dump_reason with
    | Some reason ->
      if Metric.enabled () then Metric.inc (Tel.flightrec_dumps ~reason);
      Json.write ~path:flightrec_out
        (flightrec_json ~n ~k ~d ~b ~rounds ~seed ~transport ~faults ~reason
           result);
      Printf.printf "flightrec: wrote %s (reason=%s)\n" flightrec_out reason
    | None -> ()
  end;
  (* fold the socket-boundary counters into the metrics registry so a
     CSM_METRICS exposition shows the transport layer next to the
     simulator layers *)
  if Metric.enabled () then begin
    let np1 = n + 1 in
    let arr f =
      Array.init np1 (fun i ->
          match result.C.stats.(i) with Some s -> f s | None -> 0)
    in
    Tel.record_per_node ~layer:"transport"
      ~sent:(arr (fun s -> s.Transport.frames_sent))
      ~received:(arr (fun s -> s.Transport.frames_received))
      ~bytes_sent:(arr (fun s -> s.Transport.bytes_sent))
      ~bytes_received:(arr (fun s -> s.Transport.bytes_received));
    Array.iteri
      (fun i s ->
        match s with
        | Some s when s.Transport.frame_errors > 0 ->
          Metric.inc ~by:s.Transport.frame_errors
            (Tel.transport_frame_errors ~node:i)
        | _ -> ())
      result.C.stats;
    match Prom.metrics_path () with
    | Some path ->
      Prom.write ~path;
      Printf.printf "metrics: wrote %s\n" path
    | None -> ()
  end;
  (match out with
  | Some path ->
    Json.write ~path
      (result_json ~n ~k ~d ~b ~rounds ~seed ~transport ~faults ?live result);
    Printf.printf "report: wrote %s\n" path
  | None -> ());
  Option.iter Http.stop server;
  let verified = no_verify || result.C.ok in
  Printf.printf "verify: %s\n"
    (if no_verify then "skipped" else if result.C.ok then "ok" else "MISMATCH");
  if expect_frame_errors && errors = 0 then begin
    Printf.printf "expected frame errors, saw none\n";
    exit 1
  end;
  if expect_cross_flows > 0 && cross_flows < expect_cross_flows then begin
    Printf.printf "expected >=%d cross-node flows, saw %d\n" expect_cross_flows
      cross_flows;
    exit 1
  end;
  exit (if verified then 0 else 1)

let () =
  let n = Arg.(value & opt int 3 & info [ "n" ] ~doc:"Nodes.") in
  let k = Arg.(value & opt int 1 & info [ "k" ] ~doc:"State machines.") in
  let d = Arg.(value & opt int 1 & info [ "d" ] ~doc:"Degree.") in
  let b = Arg.(value & opt int 1 & info [ "b" ] ~doc:"Byzantine budget.") in
  let rounds = Arg.(value & opt int 2 & info [ "rounds" ] ~doc:"Rounds.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let transport =
    Arg.(
      value & opt string "socket"
      & info [ "transport" ] ~doc:"loopback|socket|tcp.")
  in
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~doc:"Unix-socket directory (socket transport).")
  in
  let port_base =
    Arg.(
      value & opt int 17700
      & info [ "port-base" ] ~doc:"TCP base port (tcp transport).")
  in
  let faults =
    Arg.(
      value
      & opt faults_conv []
      & info [ "faults" ]
          ~doc:
            "Transport-level Byzantine faults, e.g. \
             $(b,1:drop,2:corrupt,0:delay:0.05).  Kinds: $(b,drop), \
             $(b,corrupt), $(b,lie), $(b,delay)[$(b,:SECONDS)].  \
             Alternatively $(b,strategy:FILE) loads a whole adversary \
             strategy from a $(b,csm-adversary-trace/1) counterexample \
             (as emitted by $(b,csm_adversary)) or bare strategy JSON, \
             mapping each searched plan onto a transport fault.")
  in
  let deadline =
    Arg.(
      value & opt float 5.0
      & info [ "deadline" ] ~doc:"Per-wait deadline in seconds.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~doc:"Write a JSON cluster report to this path.")
  in
  let no_verify =
    Arg.(
      value & flag
      & info [ "no-verify" ]
          ~doc:"Skip the reference-run comparison (exit 0 regardless).")
  in
  let expect_frame_errors =
    Arg.(
      value & flag
      & info [ "expect-frame-errors" ]
          ~doc:
            "Fail unless at least one malformed frame was detected (use with \
             a corrupt fault).")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Stamp every protocol frame with the frame-v2 trace extension and \
             write one merged Chrome trace (also: CSM_CLUSTER_TRACE=1 or \
             =PATH).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ]
          ~doc:
            "Merged Chrome trace path (implies --trace; default \
             csm-cluster-trace.json).")
  in
  let prom_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom-out" ]
          ~doc:
            "Write the cluster-merged Prometheus exposition (all gathered \
             bundles folded into one registry view) to this path.")
  in
  let flightrec =
    Arg.(
      value & flag
      & info [ "flightrec" ]
          ~doc:
            "Arm the flight recorder and always dump at end of run (also: \
             CSM_FLIGHTREC=1 or =PATH).")
  in
  let flightrec_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "flightrec-out" ]
          ~doc:
            "Arm the flight recorder, dumping only on divergence, frame \
             errors or suspicion, to this path (default csm-flightrec.json).")
  in
  let expect_cross_flows =
    Arg.(
      value & opt int 0
      & info [ "expect-cross-flows" ]
          ~doc:
            "Fail unless the gathered flight rings pair at least N cross-node \
             send/recv flows (use with --trace).")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ]
          ~doc:
            "Replay a csm-flightrec/1 dump: recompute its rounds from the \
             embedded seed and check the reference payloads byte-identical, \
             then exit.")
  in
  let serve =
    Arg.(
      value
      & opt (some int) None
      & info [ "serve" ]
          ~doc:
            "Serve the live cluster telemetry over HTTP on 127.0.0.1:PORT \
             while the run is in flight ($(b,/metrics) Prometheus \
             exposition, $(b,/healthz), $(b,/windows.json)); 0 picks an \
             ephemeral port.  Turns on in-flight telemetry streaming \
             (interval CSM_TELEMETRY_INTERVAL, default 0.1s).")
  in
  let watch =
    Arg.(
      value & flag
      & info [ "watch" ]
          ~doc:
            "Print a live status line (commits, windowed lambda, firing \
             alerts) every second while the run is in flight.  Turns on \
             in-flight telemetry streaming.")
  in
  let alerts =
    Arg.(
      value
      & opt_all string []
      & info [ "alert" ]
          ~doc:
            "Add an SLO alert rule, e.g. \
             $(b,skew:csm_hlc_skew_seconds>0.25) (repeatable; the \
             suspicion / hlc-skew / frame-error defaults always apply).  \
             Turns on in-flight telemetry streaming.")
  in
  let lambda_floor =
    Arg.(
      value
      & opt (some float) None
      & info [ "lambda-floor" ]
          ~doc:
            "Fire the $(b,lambda-floor) alert when the windowed \
             committed-command throughput falls below this many \
             commands/second.  Turns on in-flight telemetry streaming.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "csm_cluster"
         ~doc:"Run a real multi-process CSM cluster over sockets")
      Term.(
        const run $ n $ k $ d $ b $ rounds $ seed $ transport $ dir $ port_base
        $ faults $ deadline $ out $ no_verify $ expect_frame_errors $ trace
        $ trace_out $ prom_out $ flightrec $ flightrec_out $ expect_cross_flows
        $ replay $ serve $ watch $ alerts $ lambda_floor)
  in
  exit (Cmd.eval cmd)
