(* Bench regression gate:

     bench_gate --current BENCH.json --baseline bench/baseline.json
                [--previous OLD_BENCH.json] [--tolerance PCT]

   Reads the smoke-bench report just produced (csm-bench-parallel/2),
   the committed baseline, and optionally the previous run's report,
   then enforces the hardware-independent invariants:

   - the current run must be deterministic across domain widths and its
     operation ledger identical at every width (these are boolean
     results computed by the bench itself);
   - the benched configuration (n/k/d/b) must match the baseline — a
     silent config change would make op-count comparisons meaningless;
   - the ledger grand total must stay within --tolerance percent of the
     baseline's (the counts are exact, so the default tolerance exists
     only to allow deliberate, reviewed drift via a baseline update).

   Wall-clock timings are deliberately NOT gated: they measure the CI
   host, not the code.  The previous report, when given, is compared
   informationally (printed, never fatal) so gradual drift is visible
   in CI logs.

   Exit codes: 0 ok, 1 regression, 2 usage/IO/parse error. *)

open Cmdliner
module Json = Csm_obs.Json

let fail_usage fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let load path =
  try Json.parse_file path with
  | Sys_error m -> fail_usage "bench_gate: %s" m
  | Json.Parse_error m -> fail_usage "bench_gate: %s: %s" path m

let str_field j key =
  match Option.bind (Json.member key j) Json.to_string_opt with
  | Some s -> s
  | None -> fail_usage "bench_gate: missing string field %S" key

let int_field j key =
  match Option.bind (Json.member key j) Json.to_int_opt with
  | Some i -> i
  | None -> fail_usage "bench_gate: missing integer field %S" key

let bool_field j key =
  match Option.bind (Json.member key j) Json.to_bool_opt with
  | Some b -> b
  | None -> fail_usage "bench_gate: missing boolean field %S" key

let run current baseline previous tolerance =
  let cur = load current in
  let base = load baseline in
  let schema = str_field cur "schema" in
  if not (String.equal schema "csm-bench-parallel/2") then
    fail_usage "bench_gate: %s has schema %s (need csm-bench-parallel/2)"
      current schema;
  let failures = ref [] in
  let check name ok detail =
    if ok then Printf.printf "ok    %-24s %s\n" name detail
    else begin
      Printf.printf "FAIL  %-24s %s\n" name detail;
      failures := name :: !failures
    end
  in
  (* 1. invariants of the current run *)
  check "deterministic"
    (bool_field cur "deterministic")
    "identical decode across domain widths";
  check "ledger_identical"
    (bool_field cur "ledger_identical")
    "identical op ledger across domain widths";
  (* 2. config must match the baseline *)
  List.iter
    (fun key ->
      let c = int_field cur key and b = int_field base key in
      check (Printf.sprintf "config.%s" key) (c = b)
        (Printf.sprintf "current=%d baseline=%d" c b))
    [ "n"; "k"; "d"; "b" ];
  (* 3. op total vs baseline, within tolerance *)
  let cur_ops = int_field cur "ledger_grand_total" in
  let base_ops = int_field base "ledger_grand_total" in
  let drift_pct =
    if base_ops = 0 then if cur_ops = 0 then 0.0 else infinity
    else
      100.0
      *. Float.abs (float_of_int (cur_ops - base_ops))
      /. float_of_int base_ops
  in
  check "ledger_grand_total"
    (drift_pct <= tolerance)
    (Printf.sprintf "current=%d baseline=%d drift=%.2f%% (tolerance %.2f%%)"
       cur_ops base_ops drift_pct tolerance);
  (* 4. informational comparison with the previous run *)
  (match previous with
  | None -> ()
  | Some path when not (Sys.file_exists path) ->
    Printf.printf "note  previous report %s not found (first run?)\n" path
  | Some path -> (
    let prev = load path in
    match Option.bind (Json.member "ledger_grand_total" prev) Json.to_int_opt with
    | None ->
      (* pre-/2 report without the op total: nothing to compare *)
      Printf.printf "note  previous report %s predates ledger_grand_total\n"
        path
    | Some prev_ops ->
      Printf.printf "note  ops vs previous run: current=%d previous=%d (%+d)\n"
        cur_ops prev_ops (cur_ops - prev_ops)));
  if !failures = [] then begin
    Printf.printf "bench_gate: all checks passed\n";
    0
  end
  else begin
    Printf.printf "bench_gate: REGRESSION: %s\n"
      (String.concat ", " (List.rev !failures));
    1
  end

let () =
  let current =
    Arg.(
      required
      & opt (some string) None
      & info [ "current" ] ~docv:"FILE" ~doc:"Smoke-bench report to gate.")
  in
  let baseline =
    Arg.(
      required
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Committed baseline (bench/baseline.json).")
  in
  let previous =
    Arg.(
      value
      & opt (some string) None
      & info [ "previous" ] ~docv:"FILE"
          ~doc:
            "Previous run's report, compared informationally (never fatal; \
             silently noted when missing).")
  in
  let tolerance =
    Arg.(
      value & opt float 5.0
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:"Allowed op-count drift vs the baseline, in percent.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "bench_gate"
         ~doc:"Gate CI on the parallel smoke bench's invariants")
      Term.(const run $ current $ baseline $ previous $ tolerance)
  in
  exit (Cmd.eval' cmd)
