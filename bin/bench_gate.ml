(* Bench regression gate:

     bench_gate --current BENCH.json --baseline bench/baseline.json
                [--previous OLD_BENCH.json] [--tolerance PCT]

   Dispatches on the report's "schema" field.

   csm-bench-parallel/2 (the parallel smoke bench, vs
   bench/baseline.json):

   - the current run must be deterministic across domain widths and its
     operation ledger identical at every width (these are boolean
     results computed by the bench itself);
   - the benched configuration (n/k/d/b) must match the baseline — a
     silent config change would make op-count comparisons meaningless;
   - the ledger grand total must stay within --tolerance percent of the
     baseline's (the counts are exact, so the default tolerance exists
     only to allow deliberate, reviewed drift via a baseline update).

   csm-bench-rs/1 (the optimistic-decode smoke bench, vs
   bench/rs_baseline.json):

   - deterministic / ledger_identical booleans as above (here: decoded
     output and decode op counts agree across modes and domain widths);
   - config n/k/d/b must match the baseline;
   - the warm fault-free optimistic decode must cost at most the
     committed decode_ops_warm_max field operations (exact count);
   - the on-vs-off speedups (op-count and same-host wall-clock ratios)
     must clear the committed min_speedup_ops / min_speedup_wall
     floors.

   csm-bench-obs/1 (the observability overhead bench, vs
   bench/obs_baseline.json):

   - the wire/clock/bundle correctness booleans computed by the bench
     must all hold (v1 layout unchanged, v2 round trip, HLC
     monotonicity, telemetry-bundle round trip);
   - the allocation counts — exact minor-heap words per operation,
     deterministic for a fixed code path — must stay under the
     committed disabled_overhead_words_max / v2_extra_words_max
     ceilings.

   csm-bench-live/1 (the streaming-telemetry smoke bench, vs
   bench/live_baseline.json):

   - the end-to-end booleans must hold (delta merge deterministic
     under duplication/reordering, the HTTP scrape landed mid-run, the
     lying node raised the suspicion alert before run end, the run
     verified with no frame errors or rejected deltas);
   - the /metrics render allocation must stay under the committed
     scrape_words_max ceiling;
   - the mid-run windowed lambda must agree with the end-of-run
     k*accepted/run_seconds within lambda_agreement_pct_max (both
     lambdas measure this host, but their ratio is host-independent
     to first order).

   csm-bench-adversary/1 (the Table-2 tightness certification, vs
   bench/adversary_baseline.json):

   - the certification booleans must all hold, globally and per bound:
     two runs at the same seed byte-identical (deterministic), no
     violation found with b = muN adversarial nodes
     (safety_holds_at_bound), a violation witness at b = muN + 1
     (witness_found_above_bound), and every shrunk witness replaying
     byte-for-byte from its own trace (replay_ok);
   - the searched configuration (budget / seed / schedule and the
     number of certified bounds) must match the committed baseline — a
     silently smaller budget would certify a smaller strategy class
     than the one reviewed.

   Absolute wall-clock timings are deliberately NOT gated: they measure
   the CI host, not the code (the rs speedup is a same-process ratio,
   which is host-independent to first order).  The previous report,
   when given, is compared informationally (printed, never fatal) so
   gradual drift is visible in CI logs.

   Exit codes: 0 ok, 1 regression, 2 usage/IO/parse error. *)

open Cmdliner
module Json = Csm_obs.Json

let fail_usage fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

(* A missing or unreadable report is almost always a stale checkout:
   name the `make` target whose smoke run regenerates the file. *)
let regen_target path =
  let base = Filename.basename path in
  let contains sub =
    let ls = String.length sub and lb = String.length base in
    let rec go i = i + ls <= lb && (String.sub base i ls = sub || go (i + 1)) in
    go 0
  in
  if contains "adversary" then "adversary-smoke"
  else if contains "live" then "live-smoke"
  else if contains "obs" then "obs-smoke"
  else if contains "rs" then "rs-smoke"
  else "bench-smoke"

let load path =
  let hint = Printf.sprintf "(regenerate it with `make %s`)" (regen_target path) in
  try Json.parse_file path with
  | Sys_error m -> fail_usage "bench_gate: %s %s" m hint
  | Json.Parse_error m -> fail_usage "bench_gate: %s: %s %s" path m hint

let str_field j key =
  match Option.bind (Json.member key j) Json.to_string_opt with
  | Some s -> s
  | None -> fail_usage "bench_gate: missing string field %S" key

let int_field j key =
  match Option.bind (Json.member key j) Json.to_int_opt with
  | Some i -> i
  | None -> fail_usage "bench_gate: missing integer field %S" key

let bool_field j key =
  match Option.bind (Json.member key j) Json.to_bool_opt with
  | Some b -> b
  | None -> fail_usage "bench_gate: missing boolean field %S" key

let float_field j key =
  match Option.bind (Json.member key j) Json.to_float_opt with
  | Some f -> f
  | None -> fail_usage "bench_gate: missing number field %S" key

let with_checks f =
  let failures = ref [] in
  let check name ok detail =
    if ok then Printf.printf "ok    %-24s %s\n" name detail
    else begin
      Printf.printf "FAIL  %-24s %s\n" name detail;
      failures := name :: !failures
    end
  in
  f check;
  if !failures = [] then begin
    Printf.printf "bench_gate: all checks passed\n";
    0
  end
  else begin
    Printf.printf "bench_gate: REGRESSION: %s\n"
      (String.concat ", " (List.rev !failures));
    1
  end

let check_config check cur base =
  List.iter
    (fun key ->
      let c = int_field cur key and b = int_field base key in
      check (Printf.sprintf "config.%s" key) (c = b)
        (Printf.sprintf "current=%d baseline=%d" c b))
    [ "n"; "k"; "d"; "b" ]

(* ----- csm-bench-rs/1: the optimistic fast-path smoke bench ----- *)

let run_rs cur base =
  with_checks (fun check ->
      check "deterministic"
        (bool_field cur "deterministic")
        "identical decode across modes, widths and fault counts";
      check "ledger_identical"
        (bool_field cur "ledger_identical")
        "per-mode decode op counts identical across domain widths";
      check_config check cur base;
      let warm =
        match
          Option.bind (Json.member "modes" cur) (fun m ->
              Option.bind (Json.member "on" m) (fun on ->
                  Option.bind
                    (Json.member "decode_ops_warm" on)
                    Json.to_int_opt))
        with
        | Some i -> i
        | None -> fail_usage "bench_gate: missing field modes.on.decode_ops_warm"
      in
      let warm_max = int_field base "decode_ops_warm_max" in
      check "decode_ops_warm"
        (warm <= warm_max)
        (Printf.sprintf "current=%d max=%d (warm fault-free optimistic decode)"
           warm warm_max);
      List.iter
        (fun (key, floor_key) ->
          let v = float_field cur key and floor = float_field base floor_key in
          check key (v >= floor)
            (Printf.sprintf "current=%.2fx floor=%.2fx" v floor))
        [
          ("speedup_ops_on_vs_off", "min_speedup_ops");
          ("speedup_wall_on_vs_off", "min_speedup_wall");
        ])

(* ----- csm-bench-obs/1: observability allocation overhead ----- *)

let run_obs cur base =
  with_checks (fun check ->
      List.iter
        (fun (key, detail) -> check key (bool_field cur key) detail)
        [
          ( "v1_bytes_unchanged",
            "untraced frames keep the pre-v2 wire layout byte-for-byte" );
          ("v2_roundtrip_ok", "trace-stamped v2 frames decode totally");
          ("hlc_monotone", "every HLC read is strictly larger than the last");
          ( "bundle_roundtrip_ok",
            "telemetry bundles survive an encode/decode cycle" );
        ];
      List.iter
        (fun (key, max_key, detail) ->
          let v = float_field cur key and m = float_field base max_key in
          check key (v <= m)
            (Printf.sprintf "current=%.2f max=%.2f words/op (%s)" v m detail))
        [
          ( "disabled_overhead_words",
            "disabled_overhead_words_max",
            "per-frame cost with tracing off: HLC read + flight append" );
          ( "v2_extra_words",
            "v2_extra_words_max",
            "v2-over-v1 frame encode+decode allocation delta" );
        ])

(* ----- csm-bench-live/1: streaming telemetry end-to-end ----- *)

let run_live cur base =
  with_checks (fun check ->
      List.iter
        (fun (key, detail) -> check key (bool_field cur key) detail)
        [
          ( "delta_merge_deterministic",
            "duplicated/reordered deltas merge to byte-identical views" );
          ( "mid_run_scrape",
            "the HTTP scrape landed while the cluster was still committing" );
          ( "suspicion_fired",
            "the lying node raised the suspicion alert before run end" );
          ( "verify_ok",
            "lie corrected, every round accepted, no frame errors, no \
             rejected deltas" );
        ];
      check_config check cur base;
      let words = float_field cur "scrape_words"
      and words_max = float_field base "scrape_words_max" in
      check "scrape_words"
        (words <= words_max)
        (Printf.sprintf "current=%.2f max=%.2f words per /metrics render"
           words words_max);
      let agree = float_field cur "lambda_agreement_pct"
      and agree_max = float_field base "lambda_agreement_pct_max" in
      check "lambda_agreement_pct"
        (agree <= agree_max)
        (Printf.sprintf
           "mid-run windowed lambda within %.2f%% of end-of-run value (max \
            %.2f%%)"
           agree agree_max))

(* ----- csm-bench-adversary/1: Table-2 tightness certification ----- *)

let run_adversary cur base =
  with_checks (fun check ->
      (* the certificate itself: every boolean computed by the bench
         must hold, globally and per bound *)
      List.iter
        (fun (key, detail) -> check key (bool_field cur key) detail)
        [
          ( "deterministic",
            "two full certifications at the same seed are byte-identical" );
          ( "safety_holds_at_bound",
            "no searched strategy with b = muN nodes violates any bound" );
          ( "witness_found_above_bound",
            "a violation witness exists at b = muN + 1 for every bound" );
          ( "replay_ok",
            "every shrunk witness replays byte-for-byte from its trace" );
        ];
      (match Json.member "bounds" cur with
      | Some (Json.List bounds) ->
        let want = int_field base "bounds_certified" in
        check "bounds_certified"
          (List.length bounds = want)
          (Printf.sprintf "current=%d baseline=%d (one per Table-2 \
                           inequality)"
             (List.length bounds) want);
        List.iter
          (fun bj ->
            let name = str_field bj "bound" in
            List.iter
              (fun key ->
                check
                  (Printf.sprintf "%s.%s" name key)
                  (bool_field bj key)
                  (str_field bj "inequality"))
              [
                "safety_holds_at_bound";
                "witness_found_above_bound";
                "replay_ok";
              ])
          bounds
      | Some _ | None -> fail_usage "bench_gate: missing list field \"bounds\"");
      (* the searched configuration must match the committed baseline:
         a silently smaller budget or different seed would certify a
         smaller strategy class than the one reviewed *)
      List.iter
        (fun key ->
          let c = int_field cur key and b = int_field base key in
          check (Printf.sprintf "config.%s" key) (c = b)
            (Printf.sprintf "current=%d baseline=%d" c b))
        [ "budget"; "seed" ];
      let cs = str_field cur "schedule" and bs = str_field base "schedule" in
      check "config.schedule" (cs = bs)
        (Printf.sprintf "current=%s baseline=%s" cs bs))

(* ----- csm-bench-lint/1: the static analyzer run itself ----- *)

let run_lint cur base =
  with_checks (fun check ->
      check "taint" (bool_field cur "taint")
        "the gated lint run includes the whole-program passes (R6-R9)";
      let findings = int_field cur "findings" in
      check "findings" (findings = 0)
        (Printf.sprintf
           "current=%d (must be 0: fix it or justify it in lint/baseline.json)"
           findings);
      let files = int_field cur "files_scanned"
      and files_min = int_field base "files_scanned_min" in
      check "files_scanned" (files >= files_min)
        (Printf.sprintf "current=%d min=%d (a shrunken scan would gate nothing)"
           files files_min);
      let wall = float_field cur "wall_s"
      and wall_max = float_field base "wall_s_max" in
      check "wall_s" (wall <= wall_max)
        (Printf.sprintf "current=%.2fs max=%.2fs (whole-program lint budget)"
           wall wall_max))

(* ----- csm-bench-parallel/2: the parallel smoke bench ----- *)

let run_parallel cur base previous tolerance =
  with_checks (fun check ->
      (* 1. invariants of the current run *)
      check "deterministic"
        (bool_field cur "deterministic")
        "identical decode across domain widths";
      check "ledger_identical"
        (bool_field cur "ledger_identical")
        "identical op ledger across domain widths";
      (* 2. config must match the baseline *)
      check_config check cur base;
      (* 3. op total vs baseline, within tolerance *)
      let cur_ops = int_field cur "ledger_grand_total" in
      let base_ops = int_field base "ledger_grand_total" in
      let drift_pct =
        if base_ops = 0 then if cur_ops = 0 then 0.0 else infinity
        else
          100.0
          *. Float.abs (float_of_int (cur_ops - base_ops))
          /. float_of_int base_ops
      in
      check "ledger_grand_total"
        (drift_pct <= tolerance)
        (Printf.sprintf
           "current=%d baseline=%d drift=%.2f%% (tolerance %.2f%%)" cur_ops
           base_ops drift_pct tolerance);
      (* 4. informational comparison with the previous run *)
      match previous with
      | None -> ()
      | Some path when not (Sys.file_exists path) ->
        Printf.printf "note  previous report %s not found (first run?)\n" path
      | Some path -> (
        let prev = load path in
        match
          Option.bind (Json.member "ledger_grand_total" prev) Json.to_int_opt
        with
        | None ->
          (* pre-/2 report without the op total: nothing to compare *)
          Printf.printf "note  previous report %s predates ledger_grand_total\n"
            path
        | Some prev_ops ->
          Printf.printf
            "note  ops vs previous run: current=%d previous=%d (%+d)\n" cur_ops
            prev_ops (cur_ops - prev_ops)))

let run current baseline previous tolerance =
  let cur = load current in
  let base = load baseline in
  match str_field cur "schema" with
  | "csm-bench-parallel/2" -> run_parallel cur base previous tolerance
  | "csm-bench-rs/1" -> run_rs cur base
  | "csm-bench-obs/1" -> run_obs cur base
  | "csm-bench-live/1" -> run_live cur base
  | "csm-bench-adversary/1" -> run_adversary cur base
  | "csm-bench-lint/1" -> run_lint cur base
  | schema ->
    fail_usage
      "bench_gate: %s has schema %s (need csm-bench-parallel/2, \
       csm-bench-rs/1, csm-bench-obs/1, csm-bench-live/1, \
       csm-bench-adversary/1 or csm-bench-lint/1)"
      current schema

let () =
  let current =
    Arg.(
      required
      & opt (some string) None
      & info [ "current" ] ~docv:"FILE" ~doc:"Smoke-bench report to gate.")
  in
  let baseline =
    Arg.(
      required
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Committed baseline (bench/baseline.json).")
  in
  let previous =
    Arg.(
      value
      & opt (some string) None
      & info [ "previous" ] ~docv:"FILE"
          ~doc:
            "Previous run's report, compared informationally (never fatal; \
             silently noted when missing).")
  in
  let tolerance =
    Arg.(
      value & opt float 5.0
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:"Allowed op-count drift vs the baseline, in percent.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "bench_gate"
         ~doc:"Gate CI on the smoke benches' invariants (parallel or rs)")
      Term.(const run $ current $ baseline $ previous $ tolerance)
  in
  exit (Cmd.eval' cmd)
