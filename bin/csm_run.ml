(* End-to-end networked CSM demo CLI:

     csm_run [-n N] [-k K] [-d D] [-b B] [--rounds R]
             [--network sync|partial] [--adversary none|lie|equivocate|withhold]
             [--trace] [--report] [--metrics] [--ticker]

   Runs the full protocol (consensus + coded execution + client
   delivery) on the simulator and prints a per-round report.

   Observability: --trace writes a Chrome trace-event JSON (load in
   chrome://tracing or Perfetto) of the nested protocol/engine spans;
   --report writes a self-describing run-report JSON with the config,
   measured λ/γ/β, per-role operation totals, per-span p50/p95/max and
   the metrics registry; --metrics enables the per-node telemetry
   registry and prints a Prometheus text exposition to stdout (and to
   the CSM_METRICS path when set).  A live one-line ticker is shown on
   stderr while rounds run when stderr is a TTY (or CSM_TICKER=1).
   Paths default to csm_trace.json / csm_report.json and can be
   overridden with the CSM_TRACE / CSM_REPORT environment variables
   (setting CSM_TRACE / CSM_METRICS / CSM_EVENTS alone also enables the
   matching channel, flag or not). *)

open Cmdliner
module CF = Csm_field.Counted.Make (Csm_field.Fp.Default)
module P = Csm_core.Protocol.Make (CF)
module E = P.E
module M = E.M
module Params = Csm_core.Params
module Node = Csm_transport.Node
module Cluster = Csm_transport.Cluster
module Cl = Cluster.Make (CF)
module Transport = Csm_transport.Transport
module Counter = Csm_metrics.Counter
module Ledger = Csm_metrics.Ledger
module Scope = Csm_metrics.Scope
module Span = Csm_obs.Span
module Summary = Csm_obs.Summary
module Exporter = Csm_obs.Exporter
module Json = Csm_obs.Json
module Metric = Csm_obs.Metric
module Tel = Csm_obs.Telemetry
module Prom = Csm_obs.Prom
module Event = Csm_obs.Event

let network_name = function
  | Params.Sync -> "sync"
  | Params.Partial_sync -> "partial-sync"

let run_report ~n ~k ~d ~b ~rounds ~network ~adversary ~seed ~transport
    ~executed ~lambda ledger stats =
  let role_totals =
    List.map
      (fun role ->
        let a, m, i = Counter.snapshot (Ledger.counter ledger role) in
        ( role,
          Json.Obj
            [ ("adds", Json.Int a); ("muls", Json.Int m); ("invs", Json.Int i) ]
        ))
      (Ledger.roles ledger)
  in
  Json.Obj
    [
      ("schema", Json.Str "csm-run-report/2");
      ("host", Exporter.host ());
      ( "config",
        Json.Obj
          [
            ("n", Json.Int n);
            ("k", Json.Int k);
            ("d", Json.Int d);
            ("b", Json.Int b);
            ("rounds", Json.Int rounds);
            ("network", Json.Str (network_name network));
            ("adversary", Json.Str adversary);
            ("seed", Json.Int seed);
            ("transport", Json.Str transport);
          ] );
      ( "results",
        Json.Obj
          [
            ("executed_rounds", Json.Int executed);
            ("lambda", Json.Float lambda);
            ("gamma", Json.Int k);
            ("beta", Json.Int b);
            ("total_ops", Json.Int (Ledger.grand_total ledger));
          ] );
      ("roles", Json.Obj role_totals);
      ("spans", Exporter.span_summary_json stats);
      ("metrics", Exporter.metrics_json ());
    ]

(* Live one-line progress ticker on stderr: round counter plus running
   executed/skip tallies, rewritten in place. *)
let make_ticker ~rounds =
  let executed = ref 0 and skipped = ref 0 and bad = ref 0 in
  let done_ = ref 0 in
  fun (o : P.round_outcome) ->
    incr done_;
    (match o.P.consensus with
    | P.Agreed _ -> if o.P.executed then incr executed else incr bad
    | P.Skipped -> incr skipped
    | P.Disagreement -> incr bad);
    Printf.eprintf "\r\027[Kround %d/%d  executed=%d skipped=%d failed=%d%!"
      !done_ rounds !executed !skipped !bad;
    if !done_ = rounds then prerr_newline ()

let want_ticker () =
  match Sys.getenv_opt "CSM_TICKER" with
  | Some ("0" | "off" | "false") -> false
  | Some _ -> true
  | None -> ( try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false)

(* Real-transport execution: the same N/K/d/b/seed cluster over
   loopback threads or forked socket processes, run BEFORE the parent
   touches the domain pool (fork safety), its socket-boundary counters
   folded into the metrics registry under the "transport" layer.  The
   simulator run that follows is the measurement reference (λ, ops,
   spans) — the report plumbing is untouched. *)
let run_real_transport ~transport ~params ~rounds ~seed ~adversary ~liars =
  let cleanup = ref None in
  let mode =
    match transport with
    | "loopback" -> Cluster.Loopback
    | "tcp" -> Cluster.Tcp 17800
    | _ ->
      let dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "csm-run-%d" (Unix.getpid ()))
      in
      (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      cleanup := Some dir;
      Cluster.Uds dir
  in
  (* the sim adversaries' transport-level analogues: withhold → drop;
     lie → well-formed wrong Result vectors (decode-corrected);
     equivocate → detectably corrupt frames *)
  let faults =
    match adversary with
    | "none" -> []
    | "withhold" -> List.map (fun i -> (i, Node.Drop)) liars
    | "lie" -> List.map (fun i -> (i, Node.Lie Node.lie_default)) liars
    | _ -> List.map (fun i -> (i, Node.Corrupt)) liars
  in
  let cfg =
    {
      Cl.params;
      rounds;
      seed;
      mode;
      faults;
      deadline = 5.0;
      trace = false;
      telemetry = false;
      stream = None;
      live = None;
    }
  in
  let res = Cl.run cfg in
  (match !cleanup with
  | Some dir -> (
    try
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      Unix.rmdir dir
    with Sys_error _ | Unix.Unix_error _ -> ())
  | None -> ());
  let accepted =
    Array.fold_left
      (fun acc e -> if e <> None then acc + 1 else acc)
      0 res.Cl.ledger
  in
  Format.printf "transport %s: %d/%d rounds accepted, verify=%s@." transport
    accepted rounds
    (if res.Cl.ok then "ok" else "MISMATCH");
  let np1 = params.Params.n + 1 in
  let arr f =
    Array.init np1 (fun i ->
        match res.Cl.stats.(i) with Some s -> f s | None -> 0)
  in
  if Metric.enabled () then begin
    Tel.record_per_node ~layer:"transport"
      ~sent:(arr (fun s -> s.Transport.frames_sent))
      ~received:(arr (fun s -> s.Transport.frames_received))
      ~bytes_sent:(arr (fun s -> s.Transport.bytes_sent))
      ~bytes_received:(arr (fun s -> s.Transport.bytes_received));
    Array.iteri
      (fun i s ->
        match s with
        | Some s when s.Transport.frame_errors > 0 ->
          Metric.inc ~by:s.Transport.frame_errors
            (Tel.transport_frame_errors ~node:i)
        | _ -> ())
      res.Cl.stats
  end;
  res.Cl.ok

let run n k d b rounds network adversary seed transport trace report metrics
    ticker serve =
  let network =
    match network with
    | "partial" -> Params.Partial_sync
    | _ -> Params.Sync
  in
  (match transport with
  | "sim" | "loopback" | "socket" | "tcp" -> ()
  | other ->
    Printf.eprintf "csm_run: unknown --transport %s\n" other;
    exit 1);
  (* env-var-only activation (CSM_TRACE / CSM_EVENTS / CSM_METRICS
     without the flags) *)
  Exporter.install ();
  if trace || report then Span.enable ();
  if metrics || report then Metric.enable ();
  (* --serve: scrape this process's own registry while the run is in
     flight (runtime gauges refreshed per scrape) *)
  let server =
    match serve with
    | None -> None
    | Some port ->
      Metric.enable ();
      let s =
        try
          Csm_obs.Http.serve ~port (fun path ->
              match path with
              | "/metrics" ->
                Tel.sample_runtime ();
                Some (Csm_obs.Http.text (Prom.render ()))
              | "/healthz" ->
                Some (Csm_obs.Http.text ~content_type:"text/plain" "ok\n")
              | _ -> None)
        with Unix.Unix_error (e, _, _) ->
          Printf.eprintf "csm_run: --serve %d: %s\n" port
            (Unix.error_message e);
          exit 1
      in
      Format.printf "serve: http://127.0.0.1:%d/metrics@."
        (Csm_obs.Http.port s);
      Some s
  in
  let machine = M.degree_machine d in
  let params =
    try Params.make ~network ~n ~k ~d ~b
    with Invalid_argument msg ->
      prerr_endline msg;
      exit 1
  in
  let transport_ok =
    if transport = "sim" then true
    else
      run_real_transport ~transport ~params ~rounds ~seed ~adversary
        ~liars:(List.init b (fun i -> n - 1 - i))
  in
  let rng = Csm_rng.create seed in
  let init =
    Array.init k (fun i -> [| CF.of_int (1000 * (i + 1)) |])
  in
  let engine = E.create ~machine ~params ~init in
  let cfg = P.default_config params in
  let liars = List.init b (fun i -> n - 1 - i) in
  let adv =
    match adversary with
    | "lie" -> P.lying_adversary liars
    | "equivocate" -> P.equivocating_adversary liars
    | "withhold" -> P.withholding_adversary liars
    | _ -> P.passive_adversary
  in
  Format.printf "CSM: N=%d K=%d d=%d b=%d %s adversary=%s@." n k d b
    (network_name network) adversary;
  Format.printf "machine: %a@." M.pp machine;
  if liars <> [] && adversary <> "none" then
    Format.printf "byzantine nodes: %s@."
      (String.concat "," (List.map string_of_int liars));
  let workload r =
    Array.init k (fun m -> [| CF.of_int ((10 * r) + m + 1 + Csm_rng.int rng 5) |])
  in
  let ledger = Ledger.create () in
  let scope = Scope.of_ledger (module CF) ledger in
  let progress =
    if ticker || want_ticker () then Some (make_ticker ~rounds) else None
  in
  let outcomes =
    Span.with_ ~ops:scope.Scope.ops ~name:"csm_run" (fun () ->
        P.run ~scope ?progress cfg engine ~workload ~rounds adv)
  in
  List.iter
    (fun (o : P.round_outcome) ->
      Format.printf "round %d: consensus=%s executed=%b honest_agree=%b@."
        o.P.round
        (match o.P.consensus with
        | P.Agreed _ -> "agreed"
        | P.Skipped -> "skipped(⊥)"
        | P.Disagreement -> "DISAGREEMENT")
        o.P.executed o.P.honest_agree;
      (match o.P.decoded with
      | Some dec when dec.E.error_nodes <> [] ->
        Format.printf "  corrected errors from nodes: %s@."
          (String.concat "," (List.map string_of_int dec.E.error_nodes))
      | _ -> ());
      Array.iteri
        (fun m out ->
          match out with
          | Some y ->
            Format.printf "  machine %d output -> client: %s@." m
              (CF.to_string y.(0))
          | None -> Format.printf "  machine %d: no delivery@." m)
        o.P.delivered)
    outcomes;
  let executed =
    List.length (List.filter (fun o -> o.P.executed) outcomes)
  in
  Format.printf "summary: %d/%d rounds executed@." executed rounds;
  let lambda =
    if executed = 0 then 0.0
    else
      Ledger.throughput ~commands:(k * executed)
        ~node_costs:(Ledger.per_node_costs ledger ~n)
  in
  Format.printf "measured: λ=%.6f γ=%d β=%d (total ops %d)@." lambda k b
    (Ledger.grand_total ledger);
  (* paper-headline gauges, exported alongside the per-node signals *)
  Metric.set Tel.throughput_lambda lambda;
  Metric.set Tel.storage_gamma (float_of_int k);
  Metric.set Tel.security_beta (float_of_int b);
  (match Event.recent () with
  | [] -> ()
  | events ->
    Format.printf "events (%d total, %d kept):@." (Event.total ())
      (List.length events);
    List.iter (fun e -> Format.printf "  %a@." Event.pp e) events);
  if metrics then begin
    print_newline ();
    Prom.output stdout;
    match Prom.metrics_path () with
    | Some path ->
      Prom.write ~path;
      Format.printf "metrics: wrote %s@." path
    | None -> ()
  end;
  if Span.enabled () then begin
    let records = Span.records () in
    let stats = Summary.by_name records in
    Format.printf "spans:@.";
    List.iter (fun s -> Format.printf "  %a@." Summary.pp_stat s) stats;
    if trace then begin
      let path =
        match Exporter.trace_path () with Some p -> p | None -> "csm_trace.json"
      in
      Exporter.write_chrome_trace ~path records;
      Format.printf "trace: wrote %s (%d spans)@." path (List.length records)
    end;
    if report then begin
      let path =
        match Exporter.report_path () with
        | Some p -> p
        | None -> "csm_report.json"
      in
      Json.write ~path
        (run_report ~n ~k ~d ~b ~rounds ~network ~adversary ~seed ~transport
           ~executed ~lambda ledger stats);
      Format.printf "report: wrote %s@." path
    end
  end;
  Option.iter Csm_obs.Http.stop server;
  if not transport_ok then exit 1

let () =
  let n = Arg.(value & opt int 11 & info [ "n" ] ~doc:"Nodes.") in
  let k = Arg.(value & opt int 3 & info [ "k" ] ~doc:"State machines.") in
  let d = Arg.(value & opt int 2 & info [ "d" ] ~doc:"Degree.") in
  let b = Arg.(value & opt int 2 & info [ "b" ] ~doc:"Byzantine nodes.") in
  let rounds = Arg.(value & opt int 5 & info [ "rounds" ] ~doc:"Rounds.") in
  let network =
    Arg.(value & opt string "sync" & info [ "network" ] ~doc:"sync|partial.")
  in
  let adversary =
    Arg.(
      value & opt string "lie"
      & info [ "adversary" ] ~doc:"none|lie|equivocate|withhold.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let transport =
    Arg.(
      value & opt string "sim"
      & info [ "transport" ]
          ~doc:
            "Execution transport: $(b,sim) (discrete-event simulator, the \
             default), $(b,loopback) (real frames over in-process threads), \
             $(b,socket) (forked node processes over Unix-domain sockets) or \
             $(b,tcp).  Non-sim transports run the cluster first and fold its \
             socket-boundary counters into the metrics, then run the \
             simulator as the measurement reference.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Write a Chrome trace-event JSON of the run's spans \
             ($(b,CSM_TRACE) overrides the csm_trace.json default path).")
  in
  let report =
    Arg.(
      value & flag
      & info [ "report" ]
          ~doc:
            "Write a structured run-report JSON ($(b,CSM_REPORT) overrides \
             the csm_report.json default path).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Enable the telemetry registry and print a Prometheus text \
             exposition to stdout ($(b,CSM_METRICS) also writes it to that \
             path).")
  in
  let ticker =
    Arg.(
      value & flag
      & info [ "ticker" ]
          ~doc:
            "Force the live per-round progress ticker on stderr (on by \
             default when stderr is a terminal; $(b,CSM_TICKER)=0 disables).")
  in
  let serve =
    Arg.(
      value
      & opt (some int) None
      & info [ "serve" ]
          ~doc:
            "Serve this process's metric registry over HTTP on \
             127.0.0.1:PORT while the run is in flight ($(b,/metrics) \
             Prometheus exposition with csm_gc_*/process gauges refreshed \
             per scrape, $(b,/healthz)); 0 picks an ephemeral port.  \
             Implies $(b,--metrics) registry activation.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "csm_run" ~doc:"Run the networked Coded State Machine")
      Term.(
        const run $ n $ k $ d $ b $ rounds $ network $ adversary $ seed
        $ transport $ trace $ report $ metrics $ ticker $ serve)
  in
  exit (Cmd.eval cmd)
