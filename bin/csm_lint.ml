(* csm-lint: the repo-invariant static analyzer (rules R1–R5 per file,
   R6–R9 whole-program with --taint; see lib/analysis and DESIGN.md
   §5.9/§5.14).

   Exit codes: 0 clean, 1 findings (or baseline entries missing
   reasons under --update-baseline), 2 usage/IO errors (cmdliner).

     csm_lint --root . --baseline lint/baseline.json
     csm_lint --root . --taint --graph-out lock_order.dot
     csm_lint --root . --taint --update-baseline
     csm_lint --format sarif
     csm_lint --taint --bench-out BENCH_lint.json *)

module Json = Csm_obs.Json
module Finding = Csm_analysis.Finding
module Baseline = Csm_analysis.Baseline
module Driver = Csm_analysis.Driver
module Sarif = Csm_analysis.Sarif

let json_of_finding (f : Finding.t) =
  Json.Obj
    [
      ("rule", Json.Str f.Finding.rule);
      ("severity", Json.Str (Finding.severity_name f.Finding.severity));
      ("file", Json.Str f.Finding.file);
      ("line", Json.Int f.Finding.line);
      ("col", Json.Int f.Finding.col);
      ("message", Json.Str f.Finding.message);
    ]

(* Update the baseline from the current findings, carrying reasons over
   for surviving entries.  New entries get a TODO reason and make the
   run fail, so a refreshed baseline cannot land without a human
   writing down why each new entry is acceptable. *)
let update_baseline baseline_path (r : Driver.result) =
  let old = Baseline.load baseline_path in
  let entries = Baseline.of_findings ~old r.Driver.pairs in
  Baseline.save baseline_path entries;
  let todo =
    List.filter (fun e -> e.Baseline.reason = "TODO: justify or fix") entries
  in
  Printf.printf "csm-lint: wrote %s (%d entr%s, %d carried reasons)\n"
    baseline_path (List.length entries)
    (if List.length entries = 1 then "y" else "ies")
    (List.length entries - List.length todo);
  if todo = [] then 0
  else begin
    Printf.printf
      "csm-lint: %d new entr%s need a written reason before this baseline \
       is acceptable:\n"
      (List.length todo)
      (if List.length todo = 1 then "y" else "ies");
    List.iter
      (fun e ->
        Printf.printf "  [%s] %s: %s\n" e.Baseline.rule e.Baseline.file
          e.Baseline.text)
      todo;
    1
  end

let run root baseline_path update format taint graph_out bench_out =
  let abs p = if Filename.is_relative p then Filename.concat root p else p in
  let baseline_path = abs baseline_path in
  (* csm-lint: allow R1 — wall-clock of the lint pass itself, for the bench gate *)
  let t0 = Unix.gettimeofday () in
  let r = Driver.lint_tree ~taint ~root ~baseline_path () in
  (* csm-lint: allow R1 — wall-clock of the lint pass itself, for the bench gate *)
  let wall_s = Unix.gettimeofday () -. t0 in
  (match graph_out with
  | Some path ->
    Out_channel.with_open_text (abs path) (fun oc ->
        Out_channel.output_string oc
          (Csm_analysis.Lockgraph.to_dot r.Driver.lock_edges));
    Printf.printf "csm-lint: wrote %s (%d lock edge(s))\n" path
      (List.length r.Driver.lock_edges)
  | None -> ());
  (match bench_out with
  | Some path ->
    Json.write ~path:(abs path)
      (Json.Obj
         [
           ("schema", Json.Str "csm-bench-lint/1");
           ("files_scanned", Json.Int r.Driver.files_scanned);
           ("taint", Json.Bool taint);
           ("findings", Json.Int (List.length r.Driver.fresh));
           ("baselined", Json.Int (List.length r.Driver.baselined));
           ("lock_edges", Json.Int (List.length r.Driver.lock_edges));
           ("wall_s", Json.Float wall_s);
         ])
  | None -> ());
  if update then update_baseline baseline_path r
  else begin
    (match format with
    | `Text ->
      List.iter (fun f -> print_endline (Finding.to_line f)) r.Driver.fresh;
      Printf.printf
        "csm-lint: %d file(s) scanned, %d finding(s), %d baselined%s\n"
        r.Driver.files_scanned
        (List.length r.Driver.fresh)
        (List.length r.Driver.baselined)
        (if taint then
           Printf.sprintf ", %d lock edge(s)" (List.length r.Driver.lock_edges)
         else "")
    | `Json ->
      print_endline
        (Json.to_string
           (Json.Obj
              [
                ("files_scanned", Json.Int r.Driver.files_scanned);
                ( "findings",
                  Json.List (List.map json_of_finding r.Driver.fresh) );
                ("baselined", Json.Int (List.length r.Driver.baselined));
              ]))
    | `Sarif -> print_endline (Json.to_string (Sarif.render r.Driver.fresh)));
    if r.Driver.fresh = [] then 0 else 1
  end

open Cmdliner

let root =
  Arg.(
    value & opt string "."
    & info [ "root" ] ~docv:"DIR" ~doc:"Repository root to scan.")

let baseline =
  Arg.(
    value
    & opt string "lint/baseline.json"
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:"Baseline of accepted findings (relative to --root).")

let update =
  Arg.(
    value & flag
    & info [ "update-baseline" ]
        ~doc:
          "Rewrite the baseline from the current findings, preserving \
           reasons for surviving entries; exits 1 if any new entry still \
           needs a reason.")

let format =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text, json or sarif.")

let taint =
  Arg.(
    value & flag
    & info [ "taint" ]
        ~doc:
          "Run the whole-program passes too: interprocedural Byzantine-taint \
           tracking (R6-R8) and the static lock-order graph (R9).")

let graph_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "graph-out" ] ~docv:"DOT"
        ~doc:
          "Write the static lock acquisition graph as Graphviz DOT (needs \
           --taint).")

let bench_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "bench-out" ] ~docv:"FILE"
        ~doc:"Write a csm-bench-lint/1 report (wall-clock, counts) for the \
              bench gate.")

let cmd =
  let doc = "static analyzer for the CSM repo invariants (R1-R9)" in
  Cmd.v
    (Cmd.info "csm_lint" ~doc)
    Term.(
      const run $ root $ baseline $ update $ format $ taint $ graph_out
      $ bench_out)

let () = exit (Cmd.eval' cmd)
