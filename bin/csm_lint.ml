(* csm-lint: the repo-invariant static analyzer (rules R1–R5, see
   lib/analysis/rules.ml and DESIGN.md §5.9).

   Exit codes: 0 clean, 1 findings, 2 usage/IO errors (cmdliner).

     csm_lint --root . --baseline lint/baseline.json
     csm_lint --root . --baseline lint/baseline.json --update-baseline
     csm_lint --format json *)

module Json = Csm_obs.Json
module Finding = Csm_analysis.Finding
module Baseline = Csm_analysis.Baseline
module Driver = Csm_analysis.Driver

let json_of_finding (f : Finding.t) =
  Json.Obj
    [
      ("rule", Json.Str f.Finding.rule);
      ("severity", Json.Str (Finding.severity_name f.Finding.severity));
      ("file", Json.Str f.Finding.file);
      ("line", Json.Int f.Finding.line);
      ("col", Json.Int f.Finding.col);
      ("message", Json.Str f.Finding.message);
    ]

let run root baseline_path update format =
  let baseline_path =
    if Filename.is_relative baseline_path then
      Filename.concat root baseline_path
    else baseline_path
  in
  let r = Driver.lint_tree ~root ~baseline_path in
  if update then begin
    let old = Baseline.load baseline_path in
    Baseline.save baseline_path (Baseline.of_findings ~old r.Driver.pairs);
    Printf.printf "csm-lint: wrote %s (%d entr%s)\n" baseline_path
      (List.length r.Driver.pairs)
      (if List.length r.Driver.pairs = 1 then "y" else "ies");
    0
  end
  else begin
    (match format with
    | `Text ->
      List.iter
        (fun f -> print_endline (Finding.to_line f))
        r.Driver.fresh;
      Printf.printf
        "csm-lint: %d file(s) scanned, %d finding(s), %d baselined\n"
        r.Driver.files_scanned
        (List.length r.Driver.fresh)
        (List.length r.Driver.baselined)
    | `Json ->
      print_endline
        (Json.to_string
           (Json.Obj
              [
                ("files_scanned", Json.Int r.Driver.files_scanned);
                ( "findings",
                  Json.List (List.map json_of_finding r.Driver.fresh) );
                ("baselined", Json.Int (List.length r.Driver.baselined));
              ])));
    if r.Driver.fresh = [] then 0 else 1
  end

open Cmdliner

let root =
  Arg.(
    value & opt string "."
    & info [ "root" ] ~docv:"DIR" ~doc:"Repository root to scan.")

let baseline =
  Arg.(
    value
    & opt string "lint/baseline.json"
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:"Baseline of accepted findings (relative to --root).")

let update =
  Arg.(
    value & flag
    & info [ "update-baseline" ]
        ~doc:"Rewrite the baseline from the current findings and exit 0.")

let format =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json.")

let cmd =
  let doc = "static analyzer for the CSM repo invariants (R1-R5)" in
  Cmd.v
    (Cmd.info "csm_lint" ~doc)
    Term.(const run $ root $ baseline $ update $ format)

let () = exit (Cmd.eval' cmd)
