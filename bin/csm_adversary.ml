(* Adversary synthesis CLI:

     csm_adversary [--bound B] [--budget N] [--schedule S] [--seed N]
                   [--out FILE] [--witness-dir DIR]
     csm_adversary --replay FILE

   Without --replay: search Byzantine strategies against the Table-2
   oracles, certify tightness (no violation at the defender bound, a
   shrunk replayable witness one past it) and print the
   csm-bench-adversary-style report JSON.  Exit 0 iff every certified
   bound passed both sides.

   With --replay: load a csm-adversary-trace/1 file, check that its
   canonical re-serialization reproduces the file byte for byte, re-run
   the embedded strategy through the oracle and require the identical
   violation.  Exit 0 on an exact replay, 1 on divergence.

   Exit codes: 0 ok, 1 certification/replay failure, 2 usage/IO. *)

open Cmdliner
module Json = Csm_obs.Json
module Adv = Csm_adversary

let fail_usage fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let bound_conv =
  let parse s =
    if String.equal s "all" then Ok None
    else
      match Adv.Oracle.bound_of_name s with
      | Ok b -> Ok (Some b)
      | Error e -> Error (`Msg e)
  in
  let print ppf = function
    | None -> Format.pp_print_string ppf "all"
    | Some b -> Format.pp_print_string ppf (Adv.Oracle.bound_name b)
  in
  Arg.conv (parse, print)

let schedule_conv =
  let parse s =
    match Adv.Search.schedule_of_name s with
    | Ok sc -> Ok sc
    | Error e -> Error (`Msg e)
  in
  let print ppf s = Format.pp_print_string ppf (Adv.Search.schedule_name s) in
  Arg.conv (parse, print)

let default_budget () =
  match Option.bind (Sys.getenv_opt "CSM_ADVERSARY_BUDGET") int_of_string_opt with
  | Some b when b > 0 -> b
  | _ -> 1000

let fixture_stem = function
  | Adv.Oracle.Decode_sync -> "decode"
  | Adv.Oracle.Decode_partial -> "decode_partial"
  | Adv.Oracle.Output_delivery -> "output"
  | Adv.Oracle.Input_totality -> "totality"

let replay_file path =
  match Adv.Trace.load ~path with
  | Error e -> fail_usage "csm_adversary: %s" e
  | Ok t -> (
    let original = In_channel.with_open_bin path In_channel.input_all in
    let canonical = Adv.Trace.to_string t in
    if not (String.equal canonical original) then begin
      Printf.printf
        "FAIL  %s: not canonical bytes (re-serialization differs)\n" path;
      1
    end
    else
      match Adv.Trace.replay t with
      | Ok () ->
        Printf.printf
          "ok    %s: %s violated %s (%s) — replayed byte-for-byte\n" path
          (Adv.Strategy.name t.Adv.Trace.strategy)
          (Adv.Oracle.bound_name t.Adv.Trace.bound)
          (Adv.Oracle.violation_kind_name t.Adv.Trace.kind);
        0
      | Error e ->
        Printf.printf "FAIL  %s: %s\n" path e;
        1)

let certify bound budget schedule seed out witness_dir =
  let bounds =
    match bound with
    | None -> Adv.Oracle.certified_bounds
    | Some b -> [ b ]
  in
  let report = Adv.Certify.all ~bounds ~schedule ~budget ~seed () in
  let doc = Adv.Certify.report_to_json report in
  (match out with
  | None -> print_endline (Json.to_string doc)
  | Some path ->
    Json.write ~path doc;
    Printf.printf "csm_adversary: report written to %s\n" path);
  (match witness_dir with
  | None -> ()
  | Some dir ->
    List.iter
      (fun (r : Adv.Certify.bound_report) ->
        match r.Adv.Certify.witness with
        | None -> ()
        | Some t ->
          let path =
            Filename.concat dir
              (Printf.sprintf "adversary_%s.json" (fixture_stem r.Adv.Certify.bound))
          in
          Adv.Trace.write ~path t;
          Printf.printf "csm_adversary: witness written to %s\n" path)
      report.Adv.Certify.bounds);
  List.iter
    (fun (r : Adv.Certify.bound_report) ->
      Printf.printf
        "%s  %-16s %-22s at-bound: safe=%b (%d candidates%s)  above: \
         witness=%b replay=%b (%d candidates)\n"
        (if
           r.Adv.Certify.safety_holds_at_bound
           && r.Adv.Certify.witness_found_above_bound
           && r.Adv.Certify.replay_ok
         then "ok  "
         else "FAIL")
        (Adv.Oracle.bound_name r.Adv.Certify.bound)
        (Adv.Oracle.bound_inequality r.Adv.Certify.bound)
        r.Adv.Certify.safety_holds_at_bound r.Adv.Certify.at_candidates
        (if r.Adv.Certify.at_exhausted then ", exhausted" else "")
        r.Adv.Certify.witness_found_above_bound r.Adv.Certify.replay_ok
        r.Adv.Certify.above_candidates)
    report.Adv.Certify.bounds;
  if
    report.Adv.Certify.safety_holds_at_bound
    && report.Adv.Certify.witness_found_above_bound
    && report.Adv.Certify.replay_ok
  then 0
  else 1

let run bound budget schedule seed replay out witness_dir =
  match replay with
  | Some path -> replay_file path
  | None -> certify bound budget schedule seed out witness_dir

let () =
  let bound =
    Arg.(
      value
      & opt bound_conv None
      & info [ "bound" ] ~docv:"BOUND"
          ~doc:
            "Bound to certify: decode-sync, decode-partial, \
             output-delivery, input-totality or all (the three certified \
             Table-2 families).")
  in
  let budget =
    Arg.(
      value
      & opt int (default_budget ())
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Oracle evaluations per search (default \
             $(b,CSM_ADVERSARY_BUDGET) or 1000).")
  in
  let schedule =
    Arg.(
      value
      & opt schedule_conv Adv.Search.Exhaustive
      & info [ "schedule" ] ~docv:"S"
          ~doc:"Exploration schedule: exhaustive, random or greedy.")
  in
  let seed =
    Arg.(
      value & opt int 0xAD5E
      & info [ "seed" ] ~docv:"N"
          ~doc:"Seed for instances and the random/greedy schedules.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay a csm-adversary-trace/1 file instead of searching.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the certification report JSON here (default stdout).")
  in
  let witness_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "witness-dir" ] ~docv:"DIR"
          ~doc:"Write each bound's shrunk counterexample trace into DIR.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "csm_adversary"
         ~doc:
           "Search Byzantine strategies and certify the Table-2 bounds are \
            tight")
      Term.(
        const run $ bound $ budget $ schedule $ seed $ replay $ out
        $ witness_dir)
  in
  exit (Cmd.eval' cmd)
