# Convenience wrappers around dune; `make ci` is the full local gate.

.PHONY: all build test bench-smoke ci clean

all: build

build:
	dune build

test:
	dune runtest

bench-smoke:
	dune build @bench-smoke

# CI gate: type-check everything (tests and benches included),
# regenerate the parallel smoke benchmark, run the test suite, then
# exercise the tracer end-to-end — a CSM_TRACE'd demo run plus a traced
# smoke bench — so the observability layer is driven on every commit.
ci:
	dune build @check @bench-smoke
	dune runtest
	CSM_TRACE=/tmp/csm_ci_trace.json CSM_REPORT=/tmp/csm_ci_report.json \
	  dune exec bin/csm_run.exe -- --trace --report --rounds 2
	CSM_TRACE=/tmp/csm_ci_bench_trace.json \
	  dune exec bench/main.exe -- --smoke --out /tmp/csm_ci_bench.json

clean:
	dune clean
