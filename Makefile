# Convenience wrappers around dune; `make ci` is the full local gate.

.PHONY: all build test lint lint-update lockdep-export bench-smoke bench-gate rs-smoke metrics-smoke cluster-smoke obs-smoke live-smoke adversary-smoke ci clean

all: build

build:
	dune build

test:
	dune runtest

# Repo-invariant static analysis (bin/csm_lint.ml): per-file rules
# R1-R5 (determinism boundary, polymorphic comparison, mutex
# discipline, shared-state registry, decoder totality) plus the
# whole-program passes under --taint — interprocedural Byzantine-taint
# tracking R6-R8 and the static lock-order graph R9, cross-checked
# against lint/lock_order.expected.  Fails on any finding not
# justified in lint/baseline.json; the gate then holds the run to the
# committed wall-clock budget in bench/lint_baseline.json.
lint:
	dune exec bin/csm_lint.exe -- --root . --baseline lint/baseline.json \
	  --taint --bench-out /tmp/csm_ci_lint.json
	dune exec bin/bench_gate.exe -- --current /tmp/csm_ci_lint.json \
	  --baseline bench/lint_baseline.json

# Refresh lint/baseline.json from the current findings, keeping
# existing reasons; new entries get a TODO reason to fill in.
lint-update:
	dune exec bin/csm_lint.exe -- --root . --baseline lint/baseline.json \
	  --taint --update-baseline

# Refresh lint/lock_order.expected from a real CSM_LOCKDEP=1 run: a
# loopback cluster (all node threads in one process) records every
# held->acquired pair, and the process dumps the observed graph on
# exit.  csm-lint's static R9 pass contradicts any static edge whose
# reverse order was recorded here.
lockdep-export:
	dune build bin/csm_cluster.exe
	CSM_LOCKDEP=1 CSM_LOCKDEP_EXPORT=lint/lock_order.expected \
	  ./_build/default/bin/csm_cluster.exe --transport loopback \
	  -n 4 -k 1 -d 1 -b 1 --rounds 3 --faults 1:lie
	@echo "lockdep-export: wrote lint/lock_order.expected"

bench-smoke:
	dune build @bench-smoke

# Regression gate over the smoke bench: determinism + ledger invariants
# and the op-count anchor in bench/baseline.json (see bin/bench_gate.ml).
# The last committed BENCH_parallel.json serves as the informational
# "previous" point.
bench-gate:
	dune exec bench/main.exe -- --smoke --out /tmp/csm_ci_bench.json
	dune exec bin/bench_gate.exe -- --current /tmp/csm_ci_bench.json \
	  --previous BENCH_parallel.json --baseline bench/baseline.json

# Optimistic-decode fast-path smoke: regenerate the GF(2^8) rs bench
# (modes on / off / force-fallback) and gate its determinism, exact
# warm decode op count and on-vs-off speedups against
# bench/rs_baseline.json.  The last committed BENCH_rs.json is the
# informational "previous" point.
rs-smoke:
	dune exec bench/main.exe -- --rs-smoke --out /tmp/csm_ci_rs_bench.json
	dune exec bin/bench_gate.exe -- --current /tmp/csm_ci_rs_bench.json \
	  --previous BENCH_rs.json --baseline bench/rs_baseline.json

# Drive the metrics registry end-to-end: a --metrics run must emit a
# well-formed Prometheus exposition with the per-node protocol signals.
metrics-smoke:
	CSM_TICKER=0 CSM_METRICS=/tmp/csm_metrics.prom \
	  dune exec bin/csm_run.exe -- --metrics --rounds 2 > /tmp/csm_metrics_stdout.txt
	grep -q '^csm_messages_total{' /tmp/csm_metrics.prom
	grep -q '^csm_round_latency_seconds_bucket{' /tmp/csm_metrics.prom
	grep -q '^csm_node_suspicion{' /tmp/csm_metrics.prom
	@echo "metrics-smoke: ok"

# Real-cluster smoke: 3 forked node processes over Unix-domain sockets,
# 2 rounds, one Byzantine node.  The drop run must still decode and
# match the single-process reference byte-for-byte; the corrupt run
# must detect every mangled frame (csm_transport_frame_errors_total in
# the exposition) and still verify.
cluster-smoke:
	dune exec bin/csm_cluster.exe -- --transport socket \
	  -n 3 -k 1 -d 1 -b 1 --rounds 2 --faults 1:drop
	CSM_METRICS=/tmp/csm_cluster_metrics.prom \
	  dune exec bin/csm_cluster.exe -- --transport socket \
	  -n 3 -k 1 -d 1 -b 1 --rounds 2 --faults 2:corrupt --expect-frame-errors
	grep -q '^csm_transport_frame_errors_total{' /tmp/csm_cluster_metrics.prom
	grep -q '^csm_messages_total{.*layer="transport"' /tmp/csm_cluster_metrics.prom
	@echo "cluster-smoke: ok"

# Cluster observability smoke: gate the allocation-overhead bench
# against bench/obs_baseline.json, then drive the whole causal pipeline
# end to end — a 4-process socket cluster with frame-v2 trace stamping
# whose merged Chrome trace must pair at least one cross-node
# send→recv flow, a forced csm-flightrec/1 dump, and a --replay of
# that dump proving the recorded rounds recompute byte-identically
# from the embedded seed.
obs-smoke:
	dune exec bench/main.exe -- --obs-smoke --out /tmp/csm_ci_obs_bench.json
	dune exec bin/bench_gate.exe -- --current /tmp/csm_ci_obs_bench.json \
	  --baseline bench/obs_baseline.json
	CSM_FLIGHTREC=/tmp/csm_obs_flightrec.json \
	  dune exec bin/csm_cluster.exe -- --transport socket \
	  -n 4 -k 1 -d 1 -b 1 --rounds 2 \
	  --trace --trace-out /tmp/csm_obs_trace.json --expect-cross-flows 1
	dune exec bin/csm_cluster.exe -- --replay /tmp/csm_obs_flightrec.json
	grep -q '"ph":"s"' /tmp/csm_obs_trace.json
	grep -q '"ph":"f"' /tmp/csm_obs_trace.json
	@echo "obs-smoke: ok"

# Live streaming-telemetry smoke: gate the live bench (delta-merge
# determinism, scrape allocation, mid-run-scrape lambda agreement,
# the lie -> suspicion alert path) against bench/live_baseline.json,
# then drive the CLI end to end — a loopback cluster with one lying
# node streaming deltas every 10 ms whose report must embed the live
# windows document with the suspicion alert still firing.
# The bench binary runs directly (not under dune exec): the live gate
# times a streaming cluster run, and dune's parent process skews it
# badly on single-core hosts.
live-smoke:
	dune build bench/main.exe bin/bench_gate.exe bin/csm_cluster.exe
	./_build/default/bench/main.exe --live-smoke --out /tmp/csm_ci_live_bench.json
	dune exec bin/bench_gate.exe -- --current /tmp/csm_ci_live_bench.json \
	  --baseline bench/live_baseline.json
	CSM_TELEMETRY_INTERVAL=0.01 dune exec bin/csm_cluster.exe -- \
	  --transport loopback -n 4 -k 1 -d 1 -b 1 --rounds 20 \
	  --faults 1:lie --out /tmp/csm_ci_live_report.json
	grep -q '"schema":"csm-live-windows/1"' /tmp/csm_ci_live_report.json
	grep -q '"rule":"suspicion"' /tmp/csm_ci_live_report.json
	@echo "live-smoke: ok"

# CI gate: type-check everything (tests and benches included), lint
# the repo against its invariants, regenerate the parallel smoke
# benchmark, run the test suite, then exercise the observability layer
# end-to-end — a CSM_TRACE'd demo run, a traced + gated smoke bench,
# and a metrics exposition check — so linting, tracing, metrics and
# the bench gate are driven on every commit.
# Adversary-synthesis smoke: regenerate the Table-2 tightness
# certification (search at b = muN must find no violation, at
# b = muN + 1 must find a shrunk replayable witness, twice
# byte-identically at the same seed) and gate every boolean plus the
# searched budget/seed/schedule against bench/adversary_baseline.json.
# The committed counterexample fixture must also still replay
# byte-for-byte through the csm_adversary CLI.
adversary-smoke:
	dune exec bench/main.exe -- --adversary-smoke \
	  --out /tmp/csm_ci_adversary_bench.json
	dune exec bin/bench_gate.exe -- --current /tmp/csm_ci_adversary_bench.json \
	  --baseline bench/adversary_baseline.json
	dune exec bin/csm_adversary.exe -- \
	  --replay test/fixtures/adversary_decode.json
	@echo "adversary-smoke: ok"

ci:
	dune build @check @bench-smoke
	$(MAKE) lint
	dune runtest
	CSM_TRACE=/tmp/csm_ci_trace.json CSM_REPORT=/tmp/csm_ci_report.json \
	  CSM_TICKER=0 dune exec bin/csm_run.exe -- --trace --report --rounds 2
	CSM_TRACE=/tmp/csm_ci_bench_trace.json \
	  dune exec bench/main.exe -- --smoke --out /tmp/csm_ci_bench.json
	dune exec bin/bench_gate.exe -- --current /tmp/csm_ci_bench.json \
	  --previous BENCH_parallel.json --baseline bench/baseline.json
	$(MAKE) rs-smoke
	$(MAKE) metrics-smoke
	$(MAKE) cluster-smoke
	$(MAKE) obs-smoke
	$(MAKE) live-smoke
	$(MAKE) adversary-smoke

clean:
	dune clean
