# Convenience wrappers around dune; `make ci` is the full local gate.

.PHONY: all build test bench-smoke bench-gate metrics-smoke ci clean

all: build

build:
	dune build

test:
	dune runtest

bench-smoke:
	dune build @bench-smoke

# Regression gate over the smoke bench: determinism + ledger invariants
# and the op-count anchor in bench/baseline.json (see bin/bench_gate.ml).
# The last committed BENCH_parallel.json serves as the informational
# "previous" point.
bench-gate:
	dune exec bench/main.exe -- --smoke --out /tmp/csm_ci_bench.json
	dune exec bin/bench_gate.exe -- --current /tmp/csm_ci_bench.json \
	  --previous BENCH_parallel.json --baseline bench/baseline.json

# Drive the metrics registry end-to-end: a --metrics run must emit a
# well-formed Prometheus exposition with the per-node protocol signals.
metrics-smoke:
	CSM_TICKER=0 CSM_METRICS=/tmp/csm_metrics.prom \
	  dune exec bin/csm_run.exe -- --metrics --rounds 2 > /tmp/csm_metrics_stdout.txt
	grep -q '^csm_messages_total{' /tmp/csm_metrics.prom
	grep -q '^csm_round_latency_seconds_bucket{' /tmp/csm_metrics.prom
	grep -q '^csm_node_suspicion{' /tmp/csm_metrics.prom
	@echo "metrics-smoke: ok"

# CI gate: type-check everything (tests and benches included),
# regenerate the parallel smoke benchmark, run the test suite, then
# exercise the observability layer end-to-end — a CSM_TRACE'd demo run,
# a traced + gated smoke bench, and a metrics exposition check — so
# tracing, metrics and the bench gate are driven on every commit.
ci:
	dune build @check @bench-smoke
	dune runtest
	CSM_TRACE=/tmp/csm_ci_trace.json CSM_REPORT=/tmp/csm_ci_report.json \
	  CSM_TICKER=0 dune exec bin/csm_run.exe -- --trace --report --rounds 2
	CSM_TRACE=/tmp/csm_ci_bench_trace.json \
	  dune exec bench/main.exe -- --smoke --out /tmp/csm_ci_bench.json
	dune exec bin/bench_gate.exe -- --current /tmp/csm_ci_bench.json \
	  --previous BENCH_parallel.json --baseline bench/baseline.json
	$(MAKE) metrics-smoke

clean:
	dune clean
