(* Benchmark harness: one Bechamel test (or indexed family) per table /
   figure of the paper, plus the operation-counted table regeneration
   (printed after the wall-clock section).

   - table1/*            one execution-phase round per scheme (Table 1)
   - thm1/*              per-round cost vs N: decentralized vs delegated
                         CSM (Theorem 1's throughput claim)
   - fastpoly/*          naive vs quasi-linear coding (§6.2)
   - rs/*                Berlekamp-Welch vs Gao decoding
   - intermix/*          Algorithm 1: honest audit, adaptive fraud
                         localization, O(1) commoner check (Figure 5)
   - consensus/*         Dolev-Strong and PBFT instances (consensus phase)
   - transport/*         frame codec + loopback transport round trip
                         (the real-transport hot path)
   - parallel/*          one decentralized engine round at N=64 under
                         1/2/4/8 domains (the multicore execution layer)

   Everything is deterministic (fixed seeds).

   `main.exe --smoke [--out FILE]` skips bechamel and runs only the
   parallel smoke benchmark, writing a JSON report (BENCH_parallel.json
   via the `bench-smoke` alias).  `main.exe --rs-smoke [--out FILE]`
   does the same for the optimistic-decode fast path over GF(2^8)
   (BENCH_rs.json, gated against bench/rs_baseline.json), and
   `main.exe --obs-smoke [--out FILE]` for the observability layer's
   allocation overhead (BENCH_obs.json, gated against
   bench/obs_baseline.json), and `main.exe --adversary-smoke
   [--out FILE]` for the Table-2 tightness certification
   (BENCH_adversary.json, gated against
   bench/adversary_baseline.json). *)

open Bechamel
open Toolkit
module F = Csm_field.Fp.Default
module Params = Csm_core.Params

(* ----- Table 1: one round per scheme ----- *)

module R = Csm_smr.Replication.Make (F)
module E = Csm_core.Engine.Make (F)
module D = Csm_intermix.Delegation.Make (F)
module M = R.M

let t1_n = 24
let t1_mu = 0.25
let t1_d = 2
let t1_machine = M.degree_machine t1_d

let t1_k, t1_b =
  let b = int_of_float (t1_mu *. float_of_int t1_n) in
  let k_max = Params.max_machines ~network:Params.Sync ~n:t1_n ~b ~d:t1_d in
  let rec divisor k = if t1_n mod k = 0 then k else divisor (k - 1) in
  (divisor k_max, b)

let rng0 = Csm_rng.create 0xBE7C

let t1_states () =
  Array.init t1_k (fun _ ->
      Array.init t1_machine.M.state_dim (fun _ -> F.random rng0))

let t1_commands () =
  Array.init t1_k (fun _ ->
      Array.init t1_machine.M.input_dim (fun _ -> F.random rng0))

let bench_full_round =
  let t =
    R.Full.create ~machine:t1_machine ~n:t1_n ~k:t1_k ~init:(t1_states ())
  in
  let commands = t1_commands () in
  Test.make ~name:"full-replication-round"
    (Staged.stage (fun () ->
         ignore
           (R.Full.round t ~commands
              ~byzantine:(fun _ -> false)
              ~b:(R.security_full ~n:t1_n `Sync)
              ())))

let bench_partial_round =
  let t =
    R.Partial.create ~machine:t1_machine ~n:t1_n ~k:t1_k ~init:(t1_states ())
  in
  let commands = t1_commands () in
  Test.make ~name:"partial-replication-round"
    (Staged.stage (fun () ->
         ignore
           (R.Partial.round t ~commands
              ~byzantine:(fun _ -> false)
              ~b:(R.security_partial ~n:t1_n ~k:t1_k `Sync)
              ())))

let csm_params n k d =
  Params.make ~network:Params.Sync ~n ~k ~d
    ~b:(Params.max_faults ~network:Params.Sync ~n ~k ~d)

let bench_csm_decentralized_round =
  let params = csm_params t1_n t1_k t1_d in
  let engine = E.create ~machine:t1_machine ~params ~init:(t1_states ()) in
  let commands = t1_commands () in
  Test.make ~name:"csm-decentralized-round"
    (Staged.stage (fun () ->
         let r = E.round engine ~commands ~byzantine:(fun i -> i < t1_b) () in
         assert (r.E.decoded <> None)))

let bench_csm_delegated_round =
  let params = csm_params t1_n t1_k t1_d in
  let engine = E.create ~machine:t1_machine ~params ~init:(t1_states ()) in
  let commands = t1_commands () in
  Test.make ~name:"csm-intermix-round"
    (Staged.stage (fun () ->
         let out =
           D.round engine ~commands
             ~byzantine:(fun i -> i < t1_b)
             ~worker:(t1_n - 1)
             ~committee:[ 0; 1; 2 ] ()
         in
         assert (out.D.decoded <> None)))

let bench_csm_delegated_batched =
  let params = csm_params t1_n t1_k t1_d in
  let engine = E.create ~machine:t1_machine ~params ~init:(t1_states ()) in
  let commands = t1_commands () in
  Test.make ~name:"csm-intermix-batched-round"
    (Staged.stage (fun () ->
         let out =
           D.round ~batch:true engine ~commands
             ~byzantine:(fun i -> i < t1_b)
             ~worker:(t1_n - 1)
             ~committee:[ 0; 1; 2 ] ()
         in
         assert (out.D.decoded <> None)))

let table1_group =
  Test.make_grouped ~name:"table1"
    [
      bench_full_round;
      bench_partial_round;
      bench_csm_decentralized_round;
      bench_csm_delegated_round;
      bench_csm_delegated_batched;
    ]

(* ----- Theorem 1 throughput scaling: round cost vs N ----- *)

let thm1_ns = [ 12; 24; 48; 96 ]

let thm1_engine n =
  let d = 2 in
  let b = n / 4 in
  let k = max 1 (Params.max_machines ~network:Params.Sync ~n ~b ~d) in
  let params = Params.make ~network:Params.Sync ~n ~k ~d ~b in
  let machine = M.degree_machine d in
  let rng = Csm_rng.create (0x7117 + n) in
  let init =
    Array.init k (fun _ ->
        Array.init machine.M.state_dim (fun _ -> F.random rng))
  in
  let commands =
    Array.init k (fun _ ->
        Array.init machine.M.input_dim (fun _ -> F.random rng))
  in
  (E.create ~machine ~params ~init, commands)

let thm1_decentralized =
  Test.make_indexed ~name:"csm-decentralized" ~args:thm1_ns (fun n ->
      let engine, commands = thm1_engine n in
      Staged.stage (fun () ->
          let r = E.round engine ~commands ~byzantine:(fun _ -> false) () in
          assert (r.E.decoded <> None)))

let thm1_delegated =
  Test.make_indexed ~name:"csm-delegated" ~args:thm1_ns (fun n ->
      let engine, commands = thm1_engine n in
      Staged.stage (fun () ->
          let out =
            D.round engine ~commands
              ~byzantine:(fun _ -> false)
              ~worker:(n - 1) ~committee:[ 0; 1; 2 ] ()
          in
          assert (out.D.decoded <> None)))

let thm1_group =
  Test.make_grouped ~name:"thm1" [ thm1_decentralized; thm1_delegated ]

(* ----- §6.2: naive vs fast polynomial coding ----- *)

module Lag = Csm_poly.Lagrange.Make (F)
module Sub = Csm_poly.Subproduct.Make (F)

let fastpoly_ns = [ 64; 256; 1024 ]

let fastpoly_instance n =
  let k = n / 2 in
  let rng = Csm_rng.create (0xFA57 + n) in
  let omegas = Array.init k (fun i -> F.of_int i) in
  let alphas = Array.init n (fun i -> F.of_int (k + i)) in
  let values = Array.init k (fun _ -> F.random rng) in
  (omegas, alphas, values)

let bench_naive_encode =
  Test.make_indexed ~name:"naive-encode" ~args:fastpoly_ns (fun n ->
      let omegas, alphas, values = fastpoly_instance n in
      let c = Lag.coeff_matrix ~omegas ~alphas in
      Staged.stage (fun () -> ignore (Lag.encode_with_matrix c values)))

let bench_fast_encode =
  Test.make_indexed ~name:"fast-encode" ~args:fastpoly_ns (fun n ->
      let omegas, alphas, values = fastpoly_instance n in
      Staged.stage (fun () ->
          let poly = Sub.interpolate omegas values in
          ignore (Sub.eval_all poly alphas)))

let fastpoly_group =
  Test.make_grouped ~name:"fastpoly" [ bench_naive_encode; bench_fast_encode ]

(* ----- Reed-Solomon decoders ----- *)

module RS = Csm_rs.Reed_solomon.Make (F)

let rs_instance n =
  let k = n / 3 in
  let rng = Csm_rng.create (0xDEC + n) in
  let msg = RS.P.random rng ~degree:(k - 1) in
  let points = Array.init n (fun i -> F.of_int (i + 1)) in
  let word = RS.encode ~message:msg ~points in
  let corrupted, _ = RS.corrupt rng ~count:(RS.max_errors ~n ~k) word in
  (k, Array.map2 (fun x y -> (x, y)) points corrupted)

let bench_rs_bw =
  Test.make_indexed ~name:"berlekamp-welch" ~args:[ 16; 32; 64 ] (fun n ->
      let k, pairs = rs_instance n in
      Staged.stage (fun () -> assert (RS.decode_bw ~k pairs <> None)))

let bench_rs_gao =
  Test.make_indexed ~name:"gao" ~args:[ 16; 32; 64 ] (fun n ->
      let k, pairs = rs_instance n in
      Staged.stage (fun () -> assert (RS.decode_gao ~k pairs <> None)))

(* syndrome decoder on classical points (n | p-1) *)
module BMD = Csm_rs.Bm.Make (F)

let bench_rs_bm =
  Test.make_indexed ~name:"berlekamp-massey" ~args:[ 16; 32; 64 ] (fun n ->
      let k = n / 3 in
      let inst = BMD.instance ~n in
      let rng = Csm_rng.create (0xB3 + n) in
      let msg = BMD.P.random rng ~degree:(k - 1) in
      let word = BMD.encode inst ~message:msg in
      let corrupted, _ = RS.corrupt rng ~count:((n - k) / 2) word in
      Staged.stage (fun () -> assert (BMD.decode inst ~k corrupted <> None)))

(* fault-free word through a prepared context: the optimistic hit path *)
let bench_rs_optimistic =
  Test.make_indexed ~name:"optimistic-fastpath" ~args:[ 16; 32; 64 ] (fun n ->
      let k = n / 3 in
      let rng = Csm_rng.create (0x0F + n) in
      let msg = RS.P.random rng ~degree:(k - 1) in
      let points = Array.init n (fun i -> F.of_int (i + 1)) in
      let word = RS.encode ~message:msg ~points in
      let pairs = Array.map2 (fun x y -> (x, y)) points word in
      let ctx = RS.prepare_fast ~k points in
      Staged.stage (fun () -> assert (RS.decode_optimistic ~ctx ~k pairs <> None)))

let rs_group =
  Test.make_grouped ~name:"rs"
    [ bench_rs_bw; bench_rs_gao; bench_rs_bm; bench_rs_optimistic ]

(* ----- INTERMIX (Figure 5) ----- *)

module IX = Csm_intermix.Intermix.Make (F)

let ix_instance () =
  let rng = Csm_rng.create 0x1713 in
  let n = 32 and k = 64 in
  let a = IX.M.random_mat rng n k in
  let x = IX.M.random_vec rng k in
  (a, x)

let bench_ix_honest =
  let a, x = ix_instance () in
  let w = IX.honest_worker a x in
  Test.make ~name:"audit-honest"
    (Staged.stage (fun () -> assert ((IX.audit w a x).IX.result = IX.Accept)))

let bench_ix_adaptive =
  let a, x = ix_instance () in
  let w =
    IX.malicious_worker ~strategy:IX.Adaptive ~bad_rows:[ 7 ] ~offset:F.one a x
  in
  Test.make ~name:"audit-adaptive-fraud"
    (Staged.stage (fun () ->
         match (IX.audit w a x).IX.result with
         | IX.Accept -> assert false
         | IX.Alert _ -> ()))

let bench_ix_commoner =
  let a, x = ix_instance () in
  let w =
    IX.malicious_worker ~strategy:IX.Adaptive ~bad_rows:[ 7 ] ~offset:F.one a x
  in
  let alert =
    match (IX.audit w a x).IX.result with
    | IX.Alert alert -> alert
    | IX.Accept -> assert false
  in
  Test.make ~name:"commoner-check"
    (Staged.stage (fun () -> assert (IX.commoner_check a x alert)))

let intermix_group =
  Test.make_grouped ~name:"intermix"
    [ bench_ix_honest; bench_ix_adaptive; bench_ix_commoner ]

(* ----- Parallel execution layer: one engine round vs domain count ----- *)

module Pool = Csm_parallel.Pool
module CF = Csm_field.Counted.Make (F)
module EC = Csm_core.Engine.Make (CF)
module Ledger = Csm_metrics.Ledger
module Scope = Csm_metrics.Scope

(* N=64 register bank: state_dim 8, result_dim 9 — enough independent
   coordinates for the per-coordinate decode fan-out to matter. *)
let par_n = 64
let par_d = 2
let par_slots = 8
let par_machine = M.register_bank ~slots:par_slots
let par_k = Params.max_machines ~network:Params.Sync ~n:par_n ~b:16 ~d:par_d
let par_b = Params.max_faults ~network:Params.Sync ~n:par_n ~k:par_k ~d:par_d

let par_engine seed =
  let params = Params.make ~network:Params.Sync ~n:par_n ~k:par_k ~d:par_d ~b:par_b in
  let rng = Csm_rng.create seed in
  let init =
    Array.init par_k (fun _ ->
        Array.init par_machine.M.state_dim (fun _ -> F.random rng))
  in
  let commands =
    Array.init par_k (fun _ ->
        Array.init par_machine.M.input_dim (fun _ -> F.random rng))
  in
  (E.create ~machine:par_machine ~params ~init, commands)

let par_round engine commands =
  let r = E.round engine ~commands ~byzantine:(fun i -> i < par_b) () in
  assert (r.E.decoded <> None);
  r

let parallel_group =
  let engine, commands = par_engine 0x64BE
  and host = Pool.domains () in
  Test.make_grouped ~name:"parallel"
    [
      Test.make_indexed ~name:"engine-round-n64" ~args:[ 1; 2; 4; 8 ]
        (fun dm ->
          Staged.stage (fun () ->
              Pool.set_domains dm;
              Fun.protect
                ~finally:(fun () -> Pool.set_domains host)
                (fun () -> ignore (par_round engine commands))));
    ]

(* ----- smoke mode: honest JSON report for the parallel layer ----- *)

let smoke_widths = [ 1; 2; 4; 8 ]

(* wall-clock per round (ns) at a given width, median of [reps] *)
let smoke_time ~width ~reps =
  Pool.with_domain_limit width (fun () ->
      let engine, commands = par_engine 0x64BE in
      ignore (par_round engine commands);
      (* warmup *)
      let samples =
        List.init reps (fun _ ->
            let t0 = Unix.gettimeofday () in
            ignore (par_round engine commands);
            Unix.gettimeofday () -. t0)
      in
      let sorted = List.sort Float.compare samples in
      List.nth sorted (reps / 2) *. 1e9)

(* decoded output of two rounds at a given width (fresh engine, same seed) *)
let smoke_observe ~width =
  Pool.with_domain_limit width (fun () ->
      let engine, commands = par_engine 0x64BE in
      let r1 = par_round engine commands in
      let r2 = par_round engine commands in
      (r1.E.decoded, r2.E.decoded))

(* ledger grand total of one counted round at a given width *)
let smoke_ledger ~width =
  Pool.with_domain_limit width (fun () ->
      let params =
        Params.make ~network:Params.Sync ~n:par_n ~k:par_k ~d:par_d ~b:par_b
      in
      let machine = EC.M.register_bank ~slots:par_slots in
      let rng = Csm_rng.create 0x64BE in
      let init =
        Array.init par_k (fun _ ->
            Array.init machine.EC.M.state_dim (fun _ -> CF.random rng))
      in
      let commands =
        Array.init par_k (fun _ ->
            Array.init machine.EC.M.input_dim (fun _ -> CF.random rng))
      in
      let ledger = Ledger.create () in
      let scope = Scope.of_ledger (module CF) ledger in
      let engine = EC.create ~machine ~params ~init in
      let r =
        EC.round ~scope engine ~commands ~byzantine:(fun i -> i < par_b) ()
      in
      assert (r.EC.decoded <> None);
      Ledger.grand_total ledger)

let run_smoke ~out =
  (* honor CSM_TRACE: a smoke run under `make ci` doubles as a tracer
     exercise of the full parallel pipeline *)
  Csm_obs.Exporter.install ();
  let domains = List.fold_left max 1 smoke_widths in
  Pool.set_domains domains;
  let host_cores = Domain.recommended_domain_count () in
  let reps = 5 in
  let timings =
    List.map (fun w -> (w, smoke_time ~width:w ~reps)) smoke_widths
  in
  let seq_ns = List.assoc 1 timings in
  let base = smoke_observe ~width:1 in
  let deterministic =
    List.for_all (fun w -> smoke_observe ~width:w = base) smoke_widths
  in
  let base_ops = smoke_ledger ~width:1 in
  let ledger_identical =
    List.for_all (fun w -> smoke_ledger ~width:w = base_ops) smoke_widths
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"schema\": \"csm-bench-parallel/2\",\n";
  Printf.bprintf buf "  \"bench\": \"parallel/engine-round-n64\",\n";
  Printf.bprintf buf
    "  \"host\": {\"ocaml_version\": %S, \"word_size\": %d, \
     \"recommended_domains\": %d, \"domains\": %d},\n"
    Sys.ocaml_version Sys.word_size host_cores domains;
  Printf.bprintf buf "  \"machine\": %S,\n" par_machine.M.name;
  Printf.bprintf buf "  \"n\": %d, \"k\": %d, \"d\": %d, \"b\": %d,\n" par_n
    par_k par_d par_b;
  Printf.bprintf buf "  \"state_dim\": %d, \"result_dim\": %d,\n"
    par_machine.M.state_dim
    (par_machine.M.state_dim + par_machine.M.output_dim);
  Printf.bprintf buf "  \"host_cores\": %d,\n" host_cores;
  Printf.bprintf buf "  \"rounds_timed\": %d,\n" reps;
  Printf.bprintf buf "  \"timings_ns\": {%s},\n"
    (String.concat ", "
       (List.map
          (fun (w, ns) -> Printf.sprintf "\"domains_%d\": %.0f" w ns)
          timings));
  Printf.bprintf buf "  \"speedup_vs_seq\": {%s},\n"
    (String.concat ", "
       (List.map
          (fun (w, ns) -> Printf.sprintf "\"domains_%d\": %.2f" w (seq_ns /. ns))
          timings));
  Printf.bprintf buf "  \"deterministic\": %b,\n" deterministic;
  Printf.bprintf buf "  \"ledger_identical\": %b,\n" ledger_identical;
  (* hardware-independent op total: the regression gate's anchor *)
  Printf.bprintf buf "  \"ledger_grand_total\": %d,\n" base_ops;
  Printf.bprintf buf
    "  \"note\": \"wall-clock measured on host_cores CPU core(s); \
     speedups reflect that hardware, while determinism and operation \
     counts are hardware-independent\"\n";
  Buffer.add_string buf "}\n";
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "wrote %s (host_cores=%d, deterministic=%b, ledger=%b)@." out
    host_cores deterministic ledger_identical;
  if not (deterministic && ledger_identical) then exit 1

(* ----- rs-smoke mode: optimistic fast path on the round hot loop ----- *)

(* A counted GF(2^8) engine at N=64: byte-packed batch kernels under
   the encoder, per-coordinate RS decoding over the received results.
   Each mode pins the decode algorithm explicitly — the CSM_RS_FASTPATH
   env default is deliberately not consulted — so the report compares
   on / off / force-fallback on equal footing:

     on             Optimistic (verify-first fast path, warm ctx)
     off            Gao (the full error decoder on every round)
     force_fallback Optimistic_fallback_only (fast path disabled at the
                    decode call: measures the fallback's overhead)

   Op counts come from the decoder role of a per-call ledger, so they
   are exact and hardware-independent; wall-clock medians are measured
   on the CI host and only compared against each other (same process,
   same host) in the gate's speedup ratio. *)

module G8 = Csm_field.Gf2m.Gf256
module C8 = Csm_field.Counted.Make (G8)
module E8 = Csm_core.Engine.Make (C8)

let rs_smoke_n = 64
let rs_smoke_d = 2
let rs_smoke_slots = 8
let rs_smoke_machine = E8.M.register_bank ~slots:rs_smoke_slots

let rs_smoke_k =
  Params.max_machines ~network:Params.Sync ~n:rs_smoke_n ~b:16 ~d:rs_smoke_d

let rs_smoke_b =
  Params.max_faults ~network:Params.Sync ~n:rs_smoke_n ~k:rs_smoke_k
    ~d:rs_smoke_d

let rs_smoke_kdim = (rs_smoke_d * (rs_smoke_k - 1)) + 1
let rs_smoke_seed = 0x0F57

let rs_engine () =
  let params =
    Params.make ~network:Params.Sync ~n:rs_smoke_n ~k:rs_smoke_k ~d:rs_smoke_d
      ~b:rs_smoke_b
  in
  let rng = Csm_rng.create rs_smoke_seed in
  let init =
    Array.init rs_smoke_k (fun _ ->
        Array.init rs_smoke_machine.E8.M.state_dim (fun _ -> C8.random rng))
  in
  let commands =
    Array.init rs_smoke_k (fun _ ->
        Array.init rs_smoke_machine.E8.M.input_dim (fun _ -> C8.random rng))
  in
  (E8.create ~machine:rs_smoke_machine ~params ~init, commands)

(* per-node results with the first [faults] nodes lying (off-by-one in
   every coordinate: in GF(2^8) adding one always changes the value) *)
let rs_results engine commands ~faults =
  List.init rs_smoke_n (fun i ->
      let xc = E8.node_encode_command engine ~node:i ~commands in
      let g = E8.node_compute engine ~node:i ~coded_command:xc in
      let g =
        if i < faults then Array.map (fun v -> C8.add v C8.one) g else g
      in
      (i, g))

(* exact field-op count of one decode call, decoder role only *)
let rs_decode_ops ~algorithm engine received =
  let ledger = Ledger.create () in
  let scope = Scope.of_ledger (module C8) ledger in
  let d = E8.decode_results ~scope ~algorithm engine received in
  assert (d <> None);
  Ledger.total ledger "decoder"

let median samples =
  let sorted = List.sort Float.compare samples in
  List.nth sorted (List.length sorted / 2)

let rs_mode_stats ~algorithm =
  let reps = 9 in
  let engine, commands = rs_engine () in
  let received = rs_results engine commands ~faults:0 in
  (* first decode on a fresh engine builds the prepared trees (cold);
     the second reuses the engine-cached ctx (warm, the steady state) *)
  let ops_cold = rs_decode_ops ~algorithm engine received in
  let ops_warm = rs_decode_ops ~algorithm engine received in
  let decode_ns =
    median
      (List.init reps (fun _ ->
           let t0 = Unix.gettimeofday () in
           (match E8.decode_results ~algorithm engine received with
           | Some _ -> ()
           | None -> failwith "rs_mode_stats: decode failed");
           Unix.gettimeofday () -. t0))
    *. 1e9
  in
  let round_ns =
    let engine, commands = rs_engine () in
    let run () =
      let r = E8.round ~algorithm engine ~commands ~byzantine:(fun _ -> false) () in
      assert (r.E8.decoded <> None)
    in
    run ();
    (* warmup *)
    median
      (List.init reps (fun _ ->
           let t0 = Unix.gettimeofday () in
           run ();
           Unix.gettimeofday () -. t0))
    *. 1e9
  in
  (ops_cold, ops_warm, decode_ns, round_ns)

let rs_smoke_modes =
  [
    ("on", E8.RS.Optimistic);
    ("off", E8.RS.Gao);
    ("force_fallback", E8.RS.Optimistic_fallback_only);
  ]

(* decoded output of one decode at a given mode / domain width / fault
   count — must be identical everywhere within the radius *)
let rs_observe ~algorithm ~width ~faults =
  Pool.with_domain_limit width (fun () ->
      let engine, commands = rs_engine () in
      let received = rs_results engine commands ~faults in
      E8.decode_results ~algorithm engine received)

let rs_ops_at ~algorithm ~width ~faults =
  Pool.with_domain_limit width (fun () ->
      let engine, commands = rs_engine () in
      let received = rs_results engine commands ~faults in
      ignore (rs_decode_ops ~algorithm engine received);
      (* warm ctx *)
      rs_decode_ops ~algorithm engine received)

let run_rs_smoke ~out =
  Csm_obs.Exporter.install ();
  let widths = [ 1; 4 ] in
  let fault_points = [ 0; 4; 8; rs_smoke_b ] in
  let stats =
    List.map (fun (name, alg) -> (name, rs_mode_stats ~algorithm:alg))
      rs_smoke_modes
  in
  (* all modes, widths and admissible fault counts agree with the
     reference decoder (Gao at width 1) *)
  let deterministic =
    List.for_all
      (fun faults ->
        let base = rs_observe ~algorithm:E8.RS.Gao ~width:1 ~faults in
        base <> None
        && List.for_all
             (fun (_, alg) ->
               List.for_all
                 (fun width -> rs_observe ~algorithm:alg ~width ~faults = base)
                 widths)
             rs_smoke_modes)
      [ 0; rs_smoke_b ]
  in
  (* per-mode decode op counts are width-independent *)
  let ledger_identical =
    List.for_all
      (fun (_, alg) ->
        let base = rs_ops_at ~algorithm:alg ~width:1 ~faults:0 in
        List.for_all
          (fun width -> rs_ops_at ~algorithm:alg ~width ~faults:0 = base)
          widths)
      rs_smoke_modes
  in
  let fault_curve =
    List.map
      (fun faults ->
        ( faults,
          List.map
            (fun (name, alg) ->
              (name, rs_ops_at ~algorithm:alg ~width:1 ~faults))
            rs_smoke_modes ))
      fault_points
  in
  let ops_warm name =
    let _, w, _, _ = List.assoc name stats in
    w
  in
  let decode_ns name =
    let _, _, ns, _ = List.assoc name stats in
    ns
  in
  let speedup_ops =
    float_of_int (ops_warm "off") /. float_of_int (ops_warm "on")
  in
  let speedup_wall = decode_ns "off" /. decode_ns "on" in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"schema\": \"csm-bench-rs/1\",\n";
  Printf.bprintf buf "  \"bench\": \"rs/optimistic-fastpath-n64\",\n";
  Printf.bprintf buf
    "  \"host\": {\"ocaml_version\": %S, \"word_size\": %d, \
     \"recommended_domains\": %d},\n"
    Sys.ocaml_version Sys.word_size
    (Domain.recommended_domain_count ());
  Printf.bprintf buf "  \"field\": \"gf2m-8\",\n";
  Printf.bprintf buf "  \"machine\": %S,\n" rs_smoke_machine.E8.M.name;
  Printf.bprintf buf
    "  \"n\": %d, \"k\": %d, \"d\": %d, \"b\": %d, \"kdim\": %d,\n" rs_smoke_n
    rs_smoke_k rs_smoke_d rs_smoke_b rs_smoke_kdim;
  Printf.bprintf buf "  \"modes\": {\n";
  Printf.bprintf buf "%s\n"
    (String.concat ",\n"
       (List.map
          (fun (name, (cold, warm, dns, rns)) ->
            Printf.sprintf
              "    %S: {\"decode_ops_cold\": %d, \"decode_ops_warm\": %d, \
               \"decode_ns\": %.0f, \"round_ns\": %.0f}"
              name cold warm dns rns)
          stats));
  Printf.bprintf buf "  },\n";
  Printf.bprintf buf "  \"fault_curve\": [\n";
  Printf.bprintf buf "%s\n"
    (String.concat ",\n"
       (List.map
          (fun (faults, per_mode) ->
            Printf.sprintf "    {\"faults\": %d, %s}" faults
              (String.concat ", "
                 (List.map
                    (fun (name, ops) ->
                      Printf.sprintf "\"decode_ops_%s\": %d" name ops)
                    per_mode)))
          fault_curve));
  Printf.bprintf buf "  ],\n";
  Printf.bprintf buf "  \"deterministic\": %b,\n" deterministic;
  Printf.bprintf buf "  \"ledger_identical\": %b,\n" ledger_identical;
  Printf.bprintf buf "  \"speedup_ops_on_vs_off\": %.2f,\n" speedup_ops;
  Printf.bprintf buf "  \"speedup_wall_on_vs_off\": %.2f,\n" speedup_wall;
  Printf.bprintf buf
    "  \"note\": \"decode op counts are exact per-call ledger totals \
     (decoder role, hardware-independent); wall-clock medians are \
     same-host and only meaningful as the on/off ratio\"\n";
  Buffer.add_string buf "}\n";
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf
    "wrote %s (deterministic=%b, ledger=%b, ops x%.2f, wall x%.2f)@." out
    deterministic ledger_identical speedup_ops speedup_wall;
  if not (deterministic && ledger_identical) then exit 1

(* ----- Consensus phase ----- *)

module DS = Csm_consensus.Dolev_strong
module Pbft = Csm_consensus.Pbft
module Auth = Csm_crypto.Auth

let bench_dolev_strong =
  let n = 9 and f = 2 in
  let keyring = Auth.create_keyring (Csm_rng.create 5) ~n in
  let cfg = { DS.n; f; leader = 0; delta = 10; instance = "bench"; keyring } in
  Test.make ~name:"dolev-strong-n9"
    (Staged.stage (fun () ->
         let { DS.decisions; _ } = DS.run cfg ~proposal:"v" () in
         assert (decisions.(1) = DS.Decided "v")))

let bench_pbft =
  let n = 7 and f = 2 in
  let keyring = Auth.create_keyring (Csm_rng.create 6) ~n in
  let cfg = { Pbft.n; f; base_timeout = 2000; instance = "bench"; keyring } in
  Test.make ~name:"pbft-n7"
    (Staged.stage (fun () ->
         let { Pbft.decisions; _ } =
           Pbft.run cfg ~proposals:(fun _ -> Some "v") ()
         in
         assert (decisions.(1) = Some "v")))

let consensus_group =
  Test.make_grouped ~name:"consensus" [ bench_dolev_strong; bench_pbft ]

(* ----- transport: frame codec + loopback round trip ----- *)

module Frame = Csm_wire.Frame
module TW = Csm_core.Wire.Make (F)
module Transport = Csm_transport.Transport
module Loopback = Csm_transport.Loopback

let bench_frame_codec =
  let payload =
    TW.encode_vector_bin (Array.init 8 (fun i -> F.of_int (i + 1)))
  in
  let frame = Frame.make ~kind:Frame.Result ~sender:3 ~round:17 payload in
  let bytes = Frame.encode frame in
  Test.make ~name:"frame-encode-decode"
    (Staged.stage (fun () ->
         let b = Frame.encode frame in
         assert (String.length b = String.length bytes);
         match Frame.decode b with
         | Some f -> ignore (Sys.opaque_identity f)
         | None -> assert false))

let bench_loopback_rtt =
  let net = Loopback.create ~endpoints:2 in
  let a = Loopback.endpoint net ~id:0 in
  let b = Loopback.endpoint net ~id:1 in
  let payload =
    TW.encode_vector_bin (Array.init 8 (fun i -> F.of_int (i + 1)))
  in
  let frame = Frame.make ~kind:Frame.Result ~sender:0 ~round:0 payload in
  Test.make ~name:"loopback-round-trip"
    (Staged.stage (fun () ->
         a.Transport.send ~dst:1 frame;
         match b.Transport.recv ~timeout:1.0 with
         | Some _ -> ()
         | None -> assert false))

let transport_group =
  Test.make_grouped ~name:"transport" [ bench_frame_codec; bench_loopback_rtt ]

(* ----- obs-smoke mode: observability overhead (allocation-counted) -----

   Wall clock would measure the CI host, so the gate runs on exact
   allocation counts instead: words per operation are deterministic for
   a fixed code path.  Two committed ceilings (bench/obs_baseline.json):

   - disabled_overhead_words: what the observability layer adds to a
     node run with tracing OFF — one HLC read plus one flight-recorder
     append per frame (the frame bytes themselves are unchanged v1);
   - v2_extra_words: the additional allocation of encoding + decoding
     a trace-stamped v2 frame over the identical v1 frame.

   Correctness booleans (v1 layout unchanged, v2 round trip, HLC
   monotonicity, telemetry-bundle round trip) gate alongside. *)

module Clock = Csm_obs.Clock
module Flight = Csm_obs.Flight
module Agg = Csm_obs.Agg

let obs_words_per_op ~iters f =
  ignore (Sys.opaque_identity (f ()));
  let before = Gc.minor_words () in
  for _ = 1 to iters do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Gc.minor_words () -. before) /. float_of_int iters

let run_obs_smoke ~out =
  let iters = 10_000 in
  let payload = String.make 64 'p' in
  let v1 = Frame.make ~kind:Frame.Output ~sender:3 ~round:17 payload in
  let ext = { Frame.trace_id = 0xC0FFEEL; hlc = Clock.to_wire (Clock.now ()) } in
  let v2 = Frame.make ~ext ~kind:Frame.Output ~sender:3 ~round:17 payload in
  let frame_v1_words =
    obs_words_per_op ~iters (fun () -> Frame.decode (Frame.encode v1))
  in
  let frame_v2_words =
    obs_words_per_op ~iters (fun () -> Frame.decode (Frame.encode v2))
  in
  let hlc_now_words = obs_words_per_op ~iters Clock.now in
  let flight = Flight.create ~node:0 () in
  let attrs = [ ("dst", "1"); ("frame", "output") ] in
  let flight_record_words =
    obs_words_per_op ~iters (fun () ->
        Flight.record flight ~attrs ~hlc:(Clock.now ()) ~round:17 "send")
  in
  let v2_extra_words = frame_v2_words -. frame_v1_words in
  let disabled_overhead_words = hlc_now_words +. flight_record_words in
  (* correctness booleans *)
  let v1_bytes_unchanged =
    let b = Frame.encode v1 in
    String.length b = Frame.header_bytes + String.length payload
    && (match Frame.decode b with
       | Some f -> f.Frame.version = 1 && Option.is_none f.Frame.ext
       | None -> false)
  in
  let v2_roundtrip_ok =
    match Frame.decode (Frame.encode v2) with
    | Some f -> (
      Int.equal f.Frame.version Frame.ext_version
      &&
      match f.Frame.ext with
      | Some e -> Int64.equal e.Frame.trace_id 0xC0FFEEL
      | None -> false)
    | None -> false
  in
  let hlc_monotone =
    let rec go prev i =
      if i = 0 then true
      else
        let s = Clock.now () in
        Clock.compare prev s < 0 && go s (i - 1)
    in
    go (Clock.now ()) 1000
  in
  let bundle_roundtrip_ok =
    match Agg.decode_bundle (Agg.bundle_payload ~node:0 ~flight ()) with
    | Some b -> b.Agg.b_flight_recorded = Flight.recorded flight
    | None -> false
  in
  let ok =
    v1_bytes_unchanged && v2_roundtrip_ok && hlc_monotone && bundle_roundtrip_ok
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"schema\": \"csm-bench-obs/1\",\n";
  Printf.bprintf buf "  \"bench\": \"obs/wire-trace-overhead\",\n";
  Printf.bprintf buf
    "  \"host\": {\"ocaml_version\": %S, \"word_size\": %d},\n" Sys.ocaml_version
    Sys.word_size;
  Printf.bprintf buf "  \"iters\": %d,\n" iters;
  Printf.bprintf buf "  \"frame_v1_words\": %.2f,\n" frame_v1_words;
  Printf.bprintf buf "  \"frame_v2_words\": %.2f,\n" frame_v2_words;
  Printf.bprintf buf "  \"v2_extra_words\": %.2f,\n" v2_extra_words;
  Printf.bprintf buf "  \"hlc_now_words\": %.2f,\n" hlc_now_words;
  Printf.bprintf buf "  \"flight_record_words\": %.2f,\n" flight_record_words;
  Printf.bprintf buf "  \"disabled_overhead_words\": %.2f,\n"
    disabled_overhead_words;
  Printf.bprintf buf "  \"v1_bytes_unchanged\": %b,\n" v1_bytes_unchanged;
  Printf.bprintf buf "  \"v2_roundtrip_ok\": %b,\n" v2_roundtrip_ok;
  Printf.bprintf buf "  \"hlc_monotone\": %b,\n" hlc_monotone;
  Printf.bprintf buf "  \"bundle_roundtrip_ok\": %b,\n" bundle_roundtrip_ok;
  Printf.bprintf buf
    "  \"note\": \"allocation counts (words/op, minor heap) are \
     deterministic for a fixed code path and gate host-independently; \
     there is deliberately no wall-clock field\"\n";
  Buffer.add_string buf "}\n";
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf
    "wrote %s (v1=%.1fw v2=%.1fw extra=%.1fw disabled=%.1fw ok=%b)@." out
    frame_v1_words frame_v2_words v2_extra_words disabled_overhead_words ok;
  if not ok then exit 1

(* ----- live-smoke mode: streaming telemetry end-to-end gates -----

   Three gates for the live telemetry path (BENCH_live.json, schema
   csm-bench-live/1, ceilings in bench/live_baseline.json):

   - delta-merge determinism: the same synthetic delta payloads,
     duplicated and reordered, must merge into byte-identical node
     views — the cumulative-value idempotency contract;
   - scrape allocation: exact minor-heap words per /metrics render
     over a populated store, host-independent like the obs gate;
   - end-to-end agreement: a loopback cluster with one lying node
     streams deltas while it runs; a mid-run HTTP scrape must report
     a windowed lambda within the committed tolerance of the
     end-of-run k*accepted/run_seconds, and the lie must raise the
     suspicion alert before the run ends. *)

module Live = Csm_obs.Live
module AlertO = Csm_obs.Alert
module MetricO = Csm_obs.Metric
module PromO = Csm_obs.Prom
module HttpO = Csm_obs.Http
module NodeT = Csm_transport.Node
module ClusterT = Csm_transport.Cluster
module CT = ClusterT.Make (F)

let live_counter_view name v =
  {
    MetricO.name;
    help = "live-smoke synthetic counter";
    kind = MetricO.K_counter;
    samples = [ { MetricO.labels = []; value = MetricO.V_counter v } ];
  }

(* Synthetic deltas with cumulative values: seq i carries i*10. *)
let live_delta seq =
  Agg.delta_payload ~node:1 ~scope:Agg.Node ~seq ~full:(seq = 1)
    ~views:[ live_counter_view "csm_bench_live_total" (seq * 10) ]
    ~events:[] ()

let live_apply_all live payloads =
  List.iter (fun p -> ignore (Live.apply live p)) payloads

let live_delta_determinism () =
  let p1 = live_delta 1 and p2 = live_delta 2 and p3 = live_delta 3 in
  let a = Live.create ~k:1 () and b = Live.create ~k:1 () in
  live_apply_all a [ p1; p2; p3 ];
  live_apply_all b [ p1; p1; p3; p2; p2; p3; p1 ];
  PromO.render_views (Live.node_views a)
  = PromO.render_views (Live.node_views b)

let live_scrape_words () =
  let live = Live.create ~k:4 () in
  Live.mark_start ~now:100.0 live;
  live_apply_all live [ live_delta 1; live_delta 2; live_delta 3 ];
  for _ = 1 to 50 do
    Live.note_commit ~now:100.5 live
  done;
  obs_words_per_op ~iters:2_000 (fun () -> Live.scrape ~now:101.0 live)

(* Pull one unlabeled gauge value out of a Prometheus exposition. *)
let live_gauge_of_scrape name body =
  let pfx = name ^ " " in
  let pl = String.length pfx in
  List.fold_left
    (fun acc line ->
      if String.length line > pl && String.sub line 0 pl = pfx then
        float_of_string_opt (String.sub line pl (String.length line - pl))
      else acc)
    None
    (String.split_on_char '\n' body)

type live_e2e = {
  e_rounds : int;
  e_accepted : int;
  e_commits_at_scrape : int;
  e_mid_lambda : float;
  e_final_lambda : float;
  e_agreement_pct : float;
  e_suspicion_fired : bool;
  e_deltas_applied : int;
  e_deltas_rejected : int;
  e_frame_errors : int;
  e_run_seconds : float;
  e_verify_ok : bool;
}

let live_e2e ~rounds ~k =
  MetricO.enable ();
  MetricO.reset ();
  Fun.protect
    ~finally:(fun () ->
      MetricO.reset ();
      MetricO.disable ())
    (fun () ->
      let live = Live.create ~k () in
      let server =
        HttpO.serve (fun path ->
            if path = "/metrics" then Some (HttpO.text (Live.scrape live))
            else None)
      in
      Fun.protect
        ~finally:(fun () -> HttpO.stop server)
        (fun () ->
          let cfg =
            {
              CT.params = Params.make ~network:Params.Sync ~n:4 ~k ~d:1 ~b:1;
              rounds;
              seed = 4242;
              mode = ClusterT.Loopback;
              faults = [ (1, NodeT.Lie NodeT.lie_default) ];
              deadline = 30.0;
              trace = false;
              telemetry = false;
              stream = Some 0.005;
              live = Some live;
            }
          in
          let result = ref None in
          let runner = Thread.create (fun () -> result := Some (CT.run cfg)) () in
          (* Scrape over HTTP while the cluster is still committing, late
             enough that the scrape's window shares most of its span with
             the whole run: both lambdas are averages from the same start
             anchor, so at 90% of the rounds any rate drift over the run
             cancels out of their ratio instead of dominating it. *)
          let mid_target = rounds * 9 / 10 in
          while Live.commits live < mid_target && !result = None do
            Thread.yield ()
          done;
          let commits_at_scrape = Live.commits live in
          let scrape_body =
            match HttpO.get ~port:(HttpO.port server) "/metrics" with
            | Some (200, body) -> body
            | Some (code, _) ->
              Printf.ksprintf failwith "mid-run scrape returned HTTP %d" code
            | None -> failwith "mid-run scrape failed"
          in
          Thread.join runner;
          let r =
            match !result with
            | Some r -> r
            | None -> failwith "cluster run produced no result"
          in
          let accepted =
            Array.fold_left
              (fun acc l -> if Option.is_some l then acc + 1 else acc)
              0 r.CT.ledger
          in
          let frame_errors =
            Array.fold_left
              (fun acc s ->
                match s with
                | Some s -> acc + s.Transport.frame_errors
                | None -> acc)
              0 r.CT.stats
          in
          let mid_lambda =
            match live_gauge_of_scrape "csm_window_lambda" scrape_body with
            | Some v -> v
            | None -> failwith "mid-run scrape carried no csm_window_lambda"
          in
          let final_lambda =
            if r.CT.run_seconds > 0.0 then
              float_of_int (k * accepted) /. r.CT.run_seconds
            else 0.0
          in
          let agreement_pct =
            if final_lambda > 0.0 then
              100.0 *. Float.abs (mid_lambda -. final_lambda) /. final_lambda
            else infinity
          in
          let applied, _, rejected = Live.deltas live in
          {
            e_rounds = rounds;
            e_accepted = accepted;
            e_commits_at_scrape = commits_at_scrape;
            e_mid_lambda = mid_lambda;
            e_final_lambda = final_lambda;
            e_agreement_pct = agreement_pct;
            e_suspicion_fired =
              AlertO.first_fired (Live.alerts live) "suspicion" <> None;
            e_deltas_applied = applied;
            e_deltas_rejected = rejected;
            e_frame_errors = frame_errors;
            e_run_seconds = r.CT.run_seconds;
            e_verify_ok = r.CT.ok;
          }))

let run_live_smoke ~out =
  let delta_merge_deterministic = live_delta_determinism () in
  let scrape_words = live_scrape_words () in
  let rounds = 600 and k = 1 in
  let e = live_e2e ~rounds ~k in
  let mid_run_scrape = e.e_commits_at_scrape < rounds in
  let verify_ok =
    e.e_verify_ok && e.e_accepted = rounds && e.e_frame_errors = 0
    && e.e_deltas_rejected = 0
    && e.e_deltas_applied > 0
  in
  let ok =
    delta_merge_deterministic && verify_ok && mid_run_scrape
    && e.e_suspicion_fired
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"schema\": \"csm-bench-live/1\",\n";
  Printf.bprintf buf "  \"bench\": \"obs/live-streaming-telemetry\",\n";
  Printf.bprintf buf
    "  \"host\": {\"ocaml_version\": %S, \"word_size\": %d},\n" Sys.ocaml_version
    Sys.word_size;
  Printf.bprintf buf "  \"n\": 4, \"k\": %d, \"d\": 1, \"b\": 1,\n" k;
  Printf.bprintf buf "  \"rounds\": %d,\n" rounds;
  Printf.bprintf buf "  \"delta_merge_deterministic\": %b,\n"
    delta_merge_deterministic;
  Printf.bprintf buf "  \"scrape_words\": %.2f,\n" scrape_words;
  Printf.bprintf buf "  \"commits_at_scrape\": %d,\n" e.e_commits_at_scrape;
  Printf.bprintf buf "  \"mid_run_scrape\": %b,\n" mid_run_scrape;
  Printf.bprintf buf "  \"accepted\": %d,\n" e.e_accepted;
  Printf.bprintf buf "  \"run_seconds\": %.6f,\n" e.e_run_seconds;
  Printf.bprintf buf "  \"mid_lambda\": %.4f,\n" e.e_mid_lambda;
  Printf.bprintf buf "  \"final_lambda\": %.4f,\n" e.e_final_lambda;
  Printf.bprintf buf "  \"lambda_agreement_pct\": %.4f,\n" e.e_agreement_pct;
  Printf.bprintf buf "  \"suspicion_fired\": %b,\n" e.e_suspicion_fired;
  Printf.bprintf buf "  \"deltas_applied\": %d,\n" e.e_deltas_applied;
  Printf.bprintf buf "  \"deltas_rejected\": %d,\n" e.e_deltas_rejected;
  Printf.bprintf buf "  \"frame_errors\": %d,\n" e.e_frame_errors;
  Printf.bprintf buf "  \"verify_ok\": %b,\n" verify_ok;
  Printf.bprintf buf
    "  \"note\": \"booleans and the scrape allocation count are \
     deterministic; run_seconds and the lambdas measure this host, so \
     only their mutual agreement percentage is gated\"\n";
  Buffer.add_string buf "}\n";
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf
    "wrote %s (det=%b scrape=%.1fw mid-lambda=%.1f/s final-lambda=%.1f/s \
     agree=%.1f%% suspicion=%b ok=%b)@."
    out delta_merge_deterministic scrape_words e.e_mid_lambda e.e_final_lambda
    e.e_agreement_pct e.e_suspicion_fired ok;
  if not ok then exit 1

(* ----- adversary-smoke mode: Table-2 tightness certification -----

   BENCH_adversary.json (schema csm-bench-adversary/1, gated against
   bench/adversary_baseline.json) certifies that the Table-2 fault
   bounds are tight, adversary-side: for each representative bound the
   search engine explores Byzantine strategies against the protocol
   oracles and must find

   - NO safety/liveness violation when the adversary controls at most
     b = muN nodes (safety_holds_at_bound), and
   - a violation witness when it controls b + 1
     (witness_found_above_bound), shrunk to a canonical counterexample
     that replays byte-for-byte from its own serialization (replay_ok).

   The whole certification runs twice at the same seed; the two
   reports must be byte-identical (deterministic).  Everything here is
   oracle-side simulation — no wall clock, host-independent. *)

module Adv = Csm_adversary
module JsonB = Csm_obs.Json

let adversary_budget () =
  match Option.bind (Sys.getenv_opt "CSM_ADVERSARY_BUDGET") int_of_string_opt with
  | Some b when b > 0 -> b
  | Some _ | None -> 1000

let run_adversary_smoke ~out =
  let budget = adversary_budget () in
  let seed = 0xAD5E in
  let schedule = Adv.Search.Exhaustive in
  let certify () =
    (* the oracles already run metrics-disabled; reset any ambient
       registry state so the second run starts from the same world *)
    if MetricO.enabled () then MetricO.reset ();
    Adv.Certify.all ~schedule ~budget ~seed ()
  in
  let r1 = certify () in
  let r2 = certify () in
  let j1 = JsonB.to_string (Adv.Certify.report_to_json r1) in
  let j2 = JsonB.to_string (Adv.Certify.report_to_json r2) in
  let deterministic = String.equal j1 j2 in
  let report_fields =
    match Adv.Certify.report_to_json r1 with
    | JsonB.Obj fields -> fields
    | _ -> []
  in
  let doc =
    JsonB.Obj
      ([
         ("schema", JsonB.Str "csm-bench-adversary/1");
         ("bench", JsonB.Str "adversary/table2-tightness");
         ( "host",
           JsonB.Obj
             [
               ("ocaml_version", JsonB.Str Sys.ocaml_version);
               ("word_size", JsonB.Int Sys.word_size);
             ] );
         ("deterministic", JsonB.Bool deterministic);
       ]
      @ report_fields
      @ [
          ( "note",
            JsonB.Str
              "oracle-side search certification: candidate counts, \
               verdicts and the shrunk witnesses are derived from the \
               embedded seed only, so every field gates \
               host-independently" );
        ])
  in
  JsonB.write ~path:out doc;
  let ok =
    deterministic
    && r1.Adv.Certify.safety_holds_at_bound
    && r1.Adv.Certify.witness_found_above_bound
    && r1.Adv.Certify.replay_ok
  in
  Format.printf
    "wrote %s (bounds=%d deterministic=%b safe-at-bound=%b \
     witness-above=%b replay=%b)@."
    out
    (List.length r1.Adv.Certify.bounds)
    deterministic r1.Adv.Certify.safety_holds_at_bound
    r1.Adv.Certify.witness_found_above_bound r1.Adv.Certify.replay_ok;
  if not ok then exit 1

(* ----- runner ----- *)

let all_tests =
  Test.make_grouped ~name:"csm"
    [
      table1_group;
      thm1_group;
      fastpoly_group;
      rs_group;
      intermix_group;
      consensus_group;
      transport_group;
      parallel_group;
    ]

let run_benchmarks () =
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.2) ~kde:None
      ~stabilize:false ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances all_tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> est
          | Some _ | None -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Format.printf "@[<v>== wall-clock (ns/run, OLS on monotonic clock) ==@,";
  List.iter (fun (name, ns) -> Format.printf "%-44s %14.0f ns@," name ns) rows;
  Format.printf "@]@."

let rec out_arg ~default = function
  | "--out" :: path :: _ -> path
  | _ :: rest -> out_arg ~default rest
  | [] -> default

let run_all () =
  run_benchmarks ();
  (* operation-counted table regeneration (the paper's own metric) *)
  Format.printf "@.";
  Format.printf "%a@.@." Csm_harness.Table1.pp_table
    (Csm_harness.Table1.run ~rounds:2 ~n:24 ~mu:0.25 ~d:2 ());
  Format.printf "%a@.@." Csm_harness.Table2.pp_table
    (Csm_harness.Table2.run_all ());
  Format.printf "@[<v>Throughput scaling (μ=0.25, d=2)@,%a@]@.@."
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut
       Csm_harness.Scaling.pp_scaling)
    (Csm_harness.Scaling.throughput_sweep ~mu:0.25 ~d:2 [ 12; 16; 24; 32; 48 ]);
  Format.printf "@[<v>Storage/security growth (Theorem 1)@,%a@]@.@."
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut
       Csm_harness.Scaling.pp_growth)
    (Csm_harness.Scaling.growth_sweep ~mu:0.25 ~d:2
       [ 16; 32; 64; 128; 256; 512; 1024 ]);
  Format.printf "@[<v>Coding cost: naive vs fast (§6.2)@,%a@]@."
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut
       Csm_harness.Scaling.pp_coding)
    (Csm_harness.Scaling.coding_sweep [ 16; 64; 256; 1024; 4096 ])

let () =
  let argv = Array.to_list Sys.argv in
  if List.mem "--smoke" argv then
    run_smoke ~out:(out_arg ~default:"BENCH_parallel.json" argv)
  else if List.mem "--rs-smoke" argv then
    run_rs_smoke ~out:(out_arg ~default:"BENCH_rs.json" argv)
  else if List.mem "--obs-smoke" argv then
    run_obs_smoke ~out:(out_arg ~default:"BENCH_obs.json" argv)
  else if List.mem "--live-smoke" argv then
    run_live_smoke ~out:(out_arg ~default:"BENCH_live.json" argv)
  else if List.mem "--adversary-smoke" argv then
    run_adversary_smoke ~out:(out_arg ~default:"BENCH_adversary.json" argv)
  else run_all ()
